package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"hilight"
	"hilight/internal/obs"
	"hilight/internal/wire"
)

// Config sizes a Server. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Workers bounds concurrent compiles (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds compiles waiting for a worker beyond Workers
	// (default 64; negative means no queue — a busy server rejects
	// immediately). A full queue answers 429 with Retry-After.
	QueueDepth int
	// CacheBytes caps the content-addressed schedule cache (default
	// 64 MiB; negative disables caching).
	CacheBytes int64
	// MaxStoredJobs bounds retained async batches (default 64; completed
	// batches beyond the bound are evicted oldest-first).
	MaxStoredJobs int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DefaultTimeout bounds a compile when the request doesn't (default
	// 60s); MaxTimeout clamps request-supplied timeouts (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RouteWorkers is the server-wide worker-pool size for the parallel
	// route pass, applied when a request doesn't set route_workers itself
	// (0 keeps the method presets; negative selects GOMAXPROCS). Purely an
	// execution knob: schedules are byte-identical at any pool size, so it
	// never affects cache keys or cached results.
	RouteWorkers int
	// RetryAfter is the floor of the Retry-After hint returned with 429
	// responses (default 1s). The actual hint is derived from live load —
	// current queue depth times the recent average compile latency —
	// clamped between this floor and maxRetryAfter, and mirrored in the
	// JSON error body as retry_after_ms so clients don't need to parse
	// headers.
	RetryAfter time.Duration
	// NodeID, when non-empty, names this node in the X-Hilight-Node
	// response header — cluster deployments use it to make worker
	// placement observable to clients and tests.
	NodeID string
	// TenantQuota bounds concurrently admitted work per tenant (the
	// X-Hilight-Tenant request header; absent means the default tenant):
	// a tenant may hold at most this many sync compiles plus running
	// async batches at once, and excess submissions answer 429 without
	// consuming queue tickets. 0 disables per-tenant quotas.
	TenantQuota int
	// Metrics receives the service's metric families (service/...,
	// cache/..., jobs/...) alongside the compiler's own (pipeline/...,
	// route/..., batch/...). Nil creates a private registry; either way
	// it is served at GET /metrics.
	Metrics *obs.Registry
	// Events, when non-nil, observes async batch job lifecycles (wire it
	// to obs.NewLogObserver for an access-log-style stream) plus
	// service-level incidents: watchdog aborts and recovered handler
	// panics.
	Events obs.EventObserver
	// JournalDir, when non-empty, enables the durable job journal: every
	// acknowledged POST /v1/jobs batch is written to an fsync-batched
	// append-only log under this directory before the 202 returns, each
	// job's outcome is journaled as it lands, and on startup the journal
	// is replayed — finished batches are served verbatim, unfinished ones
	// resurrected with only their incomplete jobs re-run — then
	// compacted. Empty disables journaling (the seed behavior).
	JournalDir string
	// WatchdogWindow enables the compile watchdog: a compile observing
	// no routing-cycle progress for a full window is aborted (sync
	// compiles answer 504; batch jobs fail with the stall cause) and
	// counted under service/watchdog/{fired,aborted}. 0 disables.
	WatchdogWindow time.Duration
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxStoredJobs <= 0 {
		c.MaxStoredJobs = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Server is the hilightd HTTP service: compile endpoints in front of the
// hilight compiler, with the schedule cache and admission control
// between them. Create with New, expose via Handler, stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *scheduleCache
	admit    *admission
	jobs     *jobStore
	watchdog *watchdog

	requests  *obs.Counter
	succeeded *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	panics    *obs.Counter
	seconds   *obs.Histogram
	// compileSeconds observes only real (uncached, admitted) sync
	// compiles; the Retry-After derivation reads its running average.
	compileSeconds *obs.Histogram
	// Session engine meters: If-Fingerprint-Match recompiles, the subset
	// that fell back to a cold compile (no replayable prefix), parent
	// misses answered 412, and the defect feed's sweep outcomes.
	sessions         *obs.Counter
	sessionCold      *obs.Counter
	sessionMisses    *obs.Counter
	defectFeeds      *obs.Counter
	defectEvicted    *obs.Counter
	defectRecompiled *obs.Counter
}

// New returns a configured Server. With Config.JournalDir set it also
// replays and compacts the journal, which can fail (unreadable
// directory, unwritable log) — a journal-less New never errors.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	m := cfg.Metrics
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		cache:     newScheduleCache(cfg.CacheBytes, m),
		admit:     newAdmission(cfg.Workers, cfg.QueueDepth, cfg.TenantQuota, m),
		jobs:      newJobStore(cfg.MaxStoredJobs, m),
		watchdog:  newWatchdog(cfg.WatchdogWindow, m, cfg.Events),
		requests:  m.Counter("service/requests"),
		succeeded: m.Counter("service/requests-ok"),
		failed:    m.Counter("service/requests-failed"),
		canceled:  m.Counter("service/requests-canceled"),
		panics:    m.Counter("service/panics"),
		seconds:   m.Histogram("service/request-seconds", obs.DurationBuckets),
		compileSeconds: m.Histogram("service/compile-seconds", obs.DurationBuckets),
		sessions:         m.Counter("service/sessions"),
		sessionCold:      m.Counter("service/session-cold-fallbacks"),
		sessionMisses:    m.Counter("service/session-parent-misses"),
		defectFeeds:      m.Counter("service/defect-feeds"),
		defectEvicted:    m.Counter("service/defect-evictions"),
		defectRecompiled: m.Counter("service/defect-recompiles"),
	}
	s.jobs.events = cfg.Events
	s.jobs.watchdog = s.watchdog
	s.jobs.cache = s.cache
	if cfg.JournalDir != "" {
		jr, batches, sessions, maxSeq, err := openJournal(cfg.JournalDir, cfg.MaxStoredJobs, m)
		if err != nil {
			return nil, err
		}
		s.jobs.journal = jr
		if maxSeq > s.jobs.seq {
			// Never reuse an id a previous life acknowledged, even for
			// batches the replay evicted.
			s.jobs.seq = maxSeq
		}
		s.warmCache(batches)
		s.seedSessions(sessions)
		s.jobs.restore(batches, cfg.Workers, cfg.RouteWorkers, cfg.DefaultTimeout, cfg.MaxTimeout)
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/defects", s.handleDefects)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobsSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobsStatus)
	s.mux.HandleFunc("GET /v1/methods", s.handleMethods)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// warmCache seeds the schedule cache with every successful result the
// journal replayed: a resurrected batch (or a fresh request for the
// same circuit) then serves those fingerprints without recompiling.
func (s *Server) warmCache(batches []*replayBatch) {
	for _, rb := range batches {
		for i := range rb.results {
			r := rb.results[i].Result
			if r == nil || r.Fingerprint == "" {
				continue
			}
			cp := *r
			cp.Cached = false // stored form; Get flips the flag on hits
			s.cache.Put(cp.Fingerprint, &cp)
		}
	}
}

// seedSessions reinstalls journaled session results into the schedule
// cache: a restarted daemon then resolves If-Fingerprint-Match parents —
// and serves repeat fingerprints — exactly as its previous life did,
// resurrecting warm-start lineage across crashes.
func (s *Server) seedSessions(sessions []*journalRecord) {
	for _, rec := range sessions {
		var sr storedResult
		if json.Unmarshal(rec.Res, &sr) != nil || sr.Fingerprint == "" || len(sr.ScheduleBin) == 0 {
			continue
		}
		sr.Cached = false // stored form; Get flips the flag on hits
		s.cache.Put(sr.Fingerprint, &sr)
	}
}

// Handler returns the server's HTTP handler: the route mux wrapped in
// the panic-recovery middleware (and, with a NodeID configured, the
// node-identification header).
func (s *Server) Handler() http.Handler {
	h := s.recoverer(s.mux)
	if s.cfg.NodeID == "" {
		return h
	}
	inner := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Hilight-Node", s.cfg.NodeID)
		inner.ServeHTTP(w, r)
	})
}

// recoverer converts a handler panic into a 500 JSON error envelope
// instead of an aborted connection, counts it (service/panics), and
// emits a HandlerPanic event carrying the stack. http.ErrAbortHandler
// is re-panicked — it is net/http's sanctioned way to drop a
// connection, not a bug. If the handler already wrote its header the
// body may be torn mid-stream; nothing recoverable can be sent then,
// so the middleware only reports.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackedWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Inc()
			if s.cfg.Events != nil {
				s.cfg.Events.OnEvent(obs.Event{
					Kind: obs.HandlerPanic, Job: -1,
					Method: r.Method + " " + r.URL.Path,
					Err:    fmt.Errorf("panic: %v\n%s", rec, debug.Stack()),
				})
			}
			if !tw.wrote {
				s.fail(tw, &apiError{Status: http.StatusInternalServerError,
					Message: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackedWriter records whether a response header went out, so the
// recovery middleware knows if a 500 can still be delivered.
type trackedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackedWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackedWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so the streaming path can push
// frames through the recovery middleware (no-op if the transport can't
// flush).
func (t *trackedWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Metrics returns the registry the server meters into (and serves at
// GET /metrics).
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Drain flips the server to its terminal draining state: readyz starts
// failing and new compile work is rejected with 503 while already-
// admitted requests finish. Idempotent.
func (s *Server) Drain() { s.admit.drain() }

// Shutdown gracefully stops the server's own work: it drains admission,
// then waits — bounded by ctx — for running async batches. In-flight
// HTTP requests are the http.Server's to drain; call its Shutdown after
// (or concurrently with) this one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	return s.jobs.shutdown(ctx)
}

// Kill hard-stops the server, emulating a process crash for recovery
// tests: admission rejects new work, running batches are canceled, and
// the journal drops records that never reached an fsync — exactly the
// state a kill -9 leaves on disk. Unlike Shutdown it does not wait for
// batches to finish gracefully, only for their goroutines to observe
// the cancellation and exit.
func (s *Server) Kill() {
	s.admit.drain()
	s.jobs.kill()
}

// handleCompile serves POST /v1/compile: fingerprint, cache lookup,
// admission, compile, cache fill. The response form is negotiated: the
// default is the historical JSON envelope, Accept:
// application/x-hilight-sched answers the raw binary schedule with the
// envelope metadata in X-Hilight-* headers, and ?stream=1 switches to a
// chunked layer stream fed by the router's emit hook while the compile
// is still running.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	t0 := time.Now()
	defer func() { s.seconds.ObserveDuration(time.Since(t0)) }()

	var req compileRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.RouteWorkers == nil && s.cfg.RouteWorkers != 0 {
		// Server-wide default; injected before build so request validation
		// and option assembly stay in one place. Harmless before
		// Fingerprint — route workers are excluded from the digest.
		rw := s.cfg.RouteWorkers
		req.RouteWorkers = &rw
	}
	mode := negotiate(r)
	pri, err := parsePriority(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	streaming := r.URL.Query().Get("stream") == "1"
	if streaming {
		// Streamed frames are the router's raw per-cycle output; options
		// that rewrite or restart the schedule after routing would make the
		// stream disagree with (compact) or duplicate (fallback) it.
		if req.Compact {
			s.fail(w, badRequest("stream=1 cannot be combined with compact: compaction rewrites layers after routing"))
			return
		}
		if len(req.Fallback) > 0 {
			s.fail(w, badRequest("stream=1 cannot be combined with fallback: a fallback compile restarts routing mid-stream"))
			return
		}
	}
	parentFP := r.Header.Get("If-Fingerprint-Match")
	if parentFP != "" && streaming {
		// A replayed prefix streams instantly while the suffix routes live;
		// mixing the two framing regimes isn't supported.
		s.fail(w, badRequest("stream=1 cannot be combined with If-Fingerprint-Match"))
		return
	}
	c, g, opts, err := req.build()
	if err != nil {
		s.fail(w, err)
		return
	}
	fp, err := hilight.Fingerprint(c, g, opts...)
	if err != nil {
		s.fail(w, badRequest("%v", err))
		return
	}

	if !req.NoCache {
		if sr, ok := s.cache.Get(fp); ok {
			hit := *sr // shallow copy; ScheduleBin bytes are immutable
			hit.Cached = true
			if streaming {
				s.streamStored(w, &hit)
				return
			}
			s.respond(w, mode, &hit)
			return
		}
	}

	// A session recompile resolves its parent before admission: a 412 is
	// cheap and the client should learn about a lost parent immediately,
	// not after queueing. The parent comes from the schedule cache, which
	// the journal replay re-seeds on boot — so lineage survives restarts.
	var parentC *hilight.Circuit
	var parentSched *hilight.Schedule
	if parentFP != "" {
		parent, ok := s.cache.Get(parentFP)
		if !ok || len(parent.ReqJSON) == 0 {
			s.sessionMisses.Inc()
			s.fail(w, &apiError{Status: http.StatusPreconditionFailed,
				Message: fmt.Sprintf("parent fingerprint %q not cached; recompile cold", parentFP)})
			return
		}
		// Request building is deterministic, so the recorded request
		// reproduces the parent's input circuit exactly — no need to
		// store the circuit a second time in the cache entry.
		var preq compileRequest
		err = json.Unmarshal(parent.ReqJSON, &preq)
		if err == nil {
			parentC, _, _, err = preq.build()
		}
		if err == nil {
			parentSched, err = hilight.DecodeScheduleBinary(parent.ScheduleBin)
		}
		if err != nil {
			s.fail(w, &apiError{Status: http.StatusInternalServerError,
				Message: fmt.Sprintf("cached parent %q corrupt: %v", parentFP, err)})
			return
		}
	}

	release, err := s.admit.acquireFor(r.Context(), tenantOf(r), pri)
	if err != nil {
		s.failAdmission(w, r, err)
		return
	}
	defer release()

	timeout := clampTimeout(req.TimeoutMS, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	wctx, progress, stopWd := s.watchdog.guard(r.Context(), "POST /v1/compile")
	defer stopWd()
	opts = append(opts,
		hilight.WithContext(wctx),
		hilight.WithTimeout(timeout),
		hilight.WithMetrics(s.cfg.Metrics),
		hilight.WithObserver(func(cs hilight.CycleStats) {
			progress() // every routing cycle feeds the watchdog
			routeCycleHook(cs)
		}),
	)
	var enc *wire.StreamEncoder
	if streaming {
		// The stream goes out under a 200 the moment the router seals its
		// first cycle. Errors after that point can only be delivered
		// in-band as an 'X' frame — including a pass panic: frames are
		// single Write calls, so a panic lands between frames and the
		// abort below closes the stream well-formed instead of truncating
		// it. The re-panic hands the original value to the recovery
		// middleware for its usual counting and event report.
		w.Header().Set("Content-Type", wire.StreamContentType)
		w.Header().Set("X-Hilight-Fingerprint", fp)
		enc = wire.NewStreamEncoder(flushingWriter(w))
		defer func() {
			if rec := recover(); rec != nil {
				if rec != http.ErrAbortHandler && enc.Started() {
					s.failed.Inc()
					_ = enc.Abort(fmt.Sprintf("internal error: %v", rec))
				}
				panic(rec)
			}
		}()
		opts = append(opts, hilight.WithScheduleSink(enc))
	}
	t1 := time.Now()
	var res *hilight.Result
	if parentSched != nil {
		s.sessions.Inc()
		res, err = hilight.RecompileFrom(parentC, parentSched, c, g, opts...)
		if err == nil && res.WarmCycles == 0 {
			s.sessionCold.Inc()
		}
	} else {
		res, err = hilight.Compile(c, g, opts...)
	}
	stopWd()
	s.compileSeconds.ObserveDuration(time.Since(t1))
	if err != nil {
		if enc != nil && enc.Started() {
			s.failed.Inc()
			msg := err.Error()
			if stalled(wctx) {
				// The watchdog killed a stream mid-flight: the abort frame
				// carries the stall cause, and the abort is counted exactly
				// like its 504 sibling below.
				s.watchdog.aborted.Inc()
				msg = context.Cause(wctx).Error()
			}
			_ = enc.Abort(msg)
			return
		}
		if stalled(wctx) {
			s.watchdog.aborted.Inc()
			s.fail(w, &apiError{Status: http.StatusGatewayTimeout,
				Message: context.Cause(wctx).Error()})
			return
		}
		s.failCompile(w, r, err)
		return
	}
	sr, err := newStoredResult(fp, res)
	if err != nil {
		if enc != nil && enc.Started() {
			s.failed.Inc()
			_ = enc.Abort(err.Error())
			return
		}
		s.fail(w, &apiError{Status: 500, Message: err.Error()})
		return
	}
	sr.Parent = parentFP
	// Record the canonical request so this entry can later be a session
	// parent and a defect-feed recompile target. Marshaling the already-
	// decoded struct cannot fail.
	sr.ReqJSON, _ = json.Marshal(&req)
	if !req.NoCache {
		s.cache.Put(fp, sr)
	}
	if parentFP != "" && s.jobs.journal != nil {
		// The ack below promises the session result exists; the waited
		// fsync makes that promise crash-proof, mirroring the jobs ack.
		srJSON, _ := json.Marshal(sr)
		if err := s.jobs.journal.appendSession(fp, parentFP, srJSON); err != nil {
			s.fail(w, &apiError{Status: http.StatusInternalServerError,
				Message: fmt.Sprintf("journal session: %v", err)})
			return
		}
	}
	if enc != nil {
		// The layers already went out frame by frame; seal the stream with
		// the metadata trailer the JSON envelope would have carried.
		s.succeeded.Inc()
		meta, _ := json.Marshal(sr.meta())
		_ = enc.End(meta)
		return
	}
	s.respond(w, mode, sr)
}

// respMode is the negotiated response rendering for a sync compile.
type respMode int

const (
	// modeJSON is the historical default: the JSON envelope with the
	// schedule inline.
	modeJSON respMode = iota
	// modeBinary answers the raw binary wire payload with the envelope
	// metadata in X-Hilight-* headers.
	modeBinary
	// modeEnvelope answers the JSON envelope with the schedule as the
	// base64 binary payload (schedule_bin) instead of inline JSON — the
	// node-to-node form: full metadata for a byte-identical transcode at
	// the coordinator edge, at the binary payload's size.
	modeEnvelope
)

// codec maps the mode onto the stored-result codec used for job views.
func (m respMode) codec() wire.Codec {
	if m == modeJSON {
		return wire.JSON
	}
	return wire.Binary
}

// negotiate picks the response mode from the Accept header: an explicit
// application/x-hilight-sched selects the raw binary payload,
// application/x-hilight-sched+json the binary-in-envelope form, and
// everything else — absent, application/json, */* — keeps the
// historical JSON default.
func negotiate(r *http.Request) respMode {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt := strings.TrimSpace(part)
			if i := strings.IndexByte(mt, ';'); i >= 0 {
				mt = strings.TrimSpace(mt[:i])
			}
			if mt == wire.BinaryEnvelopeContentType {
				return modeEnvelope
			}
			if c, ok := wire.ByContentType(mt); ok && c.Name() != wire.JSON.Name() {
				return modeBinary
			}
		}
	}
	return modeJSON
}

// tenantOf extracts the request's tenant for quota accounting; an absent
// header is the default (empty) tenant.
func tenantOf(r *http.Request) string { return r.Header.Get("X-Hilight-Tenant") }

// parsePriority maps the X-Hilight-Priority header onto an admission
// priority class. Absent or "interactive" is the high class; "batch"
// requests accept extra backpressure (they may only claim queue tickets
// while the queue is under half full, so interactive traffic always has
// headroom). Anything else is a request error.
func parsePriority(r *http.Request) (priorityClass, error) {
	switch r.Header.Get("X-Hilight-Priority") {
	case "", "interactive":
		return priorityInteractive, nil
	case "batch", "low":
		return priorityBatch, nil
	default:
		return priorityInteractive, badRequest("unknown X-Hilight-Priority %q (interactive, batch)", r.Header.Get("X-Hilight-Priority"))
	}
}

// respond renders a stored result for the negotiated mode. JSON keeps
// the historical enveloped response, byte for byte. The binary mode
// answers the raw wire payload as the body with the envelope metadata
// lifted into X-Hilight-* headers — no base64, no envelope tax. The
// envelope mode keeps the JSON envelope but carries the schedule as the
// binary payload.
func (s *Server) respond(w http.ResponseWriter, mode respMode, sr *storedResult) {
	if mode == modeBinary {
		h := w.Header()
		h.Set("Content-Type", wire.Binary.ContentType())
		h.Set("Content-Length", strconv.Itoa(len(sr.ScheduleBin)))
		h.Set("X-Hilight-Fingerprint", sr.Fingerprint)
		h.Set("X-Hilight-Cached", strconv.FormatBool(sr.Cached))
		h.Set("X-Hilight-Method", sr.Method)
		h.Set("X-Hilight-Latency-Cycles", strconv.Itoa(sr.LatencyCycles))
		if sr.Degraded {
			h.Set("X-Hilight-Fallback-Method", sr.FallbackMethod)
		}
		s.succeeded.Inc()
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(sr.ScheduleBin)
		return
	}
	resp, err := sr.response(mode.codec())
	if err != nil {
		s.fail(w, &apiError{Status: 500, Message: err.Error()})
		return
	}
	s.succeeded.Inc()
	if mode == modeEnvelope {
		w.Header().Set("Content-Type", wire.BinaryEnvelopeContentType)
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamStored replays a cached schedule as a layer stream: the frames
// come from the stored binary payload instead of a live router, so a
// cache hit and a fresh compile are indistinguishable to a stream
// consumer (apart from the metadata trailer's cached flag).
func (s *Server) streamStored(w http.ResponseWriter, sr *storedResult) {
	schd, err := wire.Binary.Decode(sr.ScheduleBin)
	if err != nil {
		s.fail(w, &apiError{Status: 500, Message: fmt.Sprintf("stored schedule corrupt: %v", err)})
		return
	}
	meta, _ := json.Marshal(sr.meta())
	w.Header().Set("Content-Type", wire.StreamContentType)
	w.Header().Set("X-Hilight-Fingerprint", sr.Fingerprint)
	s.succeeded.Inc()
	// A write error means the client went away; nothing recoverable.
	_ = wire.StreamSchedule(wire.NewStreamEncoder(flushingWriter(w)), schd, meta)
}

// flushWriter pushes every frame to the client as it is written — the
// point of ?stream=1 is holding layer 0 before the compile finishes, so
// frames must not sit in the response buffer.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func flushingWriter(w http.ResponseWriter) io.Writer {
	fw := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		fw.f = f
	}
	return fw
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// handleJobsSubmit serves POST /v1/jobs.
func (s *Server) handleJobsSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	if s.admit.draining.Load() {
		s.failAdmission(w, r, errDraining)
		return
	}
	var req jobsRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	// A batch holds one unit of its tenant's quota from ack to the last
	// job — released by the batch's completion hook, or here if the
	// submit never launches it.
	relTenant, err := s.admit.acquireTenant(tenantOf(r))
	if err != nil {
		s.admit.rejected.Inc()
		s.admit.quotaRejected.Inc()
		s.failAdmission(w, r, err)
		return
	}
	id, fps, err := s.jobs.submit(&req, s.cfg.Workers, s.cfg.RouteWorkers, s.cfg.DefaultTimeout, s.cfg.MaxTimeout, relTenant)
	if err != nil {
		relTenant()
		s.fail(w, err)
		return
	}
	s.succeeded.Inc()
	// The fingerprints let clients resubmit idempotently after a daemon
	// restart: a batch keyed by the same fingerprints compiles to the
	// same schedules, journal or not.
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "count": len(req.Jobs), "fingerprints": fps,
	})
}

// handleJobsStatus serves GET /v1/jobs/{id}.
func (s *Server) handleJobsStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	st, ok := s.jobs.status(r.PathValue("id"), negotiate(r).codec())
	if !ok {
		s.fail(w, &apiError{Status: 404, Message: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return
	}
	s.succeeded.Inc()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.succeeded.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"methods": hilight.Methods()})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.succeeded.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": hilight.BenchmarkNames()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.admit.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Metrics.WriteMetrics(w); err != nil {
		// The write failed mid-stream; nothing recoverable to send.
		return
	}
}

// decodeBody parses the JSON request body with the configured size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{Status: http.StatusRequestEntityTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// maxRetryAfter caps the derived Retry-After hint: past a minute the
// estimate says more about a pathological backlog than about when to
// retry, and well-behaved clients should poll by then anyway.
const maxRetryAfter = time.Minute

// retryAfterHint derives the 429 Retry-After from live load instead of
// a static config value: the current backlog (queued + in-flight), in
// waves of cfg.Workers, times the recent average compile latency from
// the service/compile-seconds histogram. Before any compile has been
// observed — or if load is momentarily zero — it falls back to the
// configured floor; the result is clamped to [cfg.RetryAfter,
// maxRetryAfter].
func (s *Server) retryAfterHint() time.Duration {
	hint := s.cfg.RetryAfter
	if n := s.compileSeconds.Count(); n > 0 {
		avg := time.Duration(s.compileSeconds.Sum() / float64(n) * float64(time.Second))
		waves := s.admit.load()/max(s.cfg.Workers, 1) + 1
		hint = time.Duration(waves) * avg
	}
	return min(max(hint, s.cfg.RetryAfter), maxRetryAfter)
}

// failAdmission renders admission-control rejections: 429 + Retry-After
// for a full queue or an exhausted tenant quota, 503 for a draining
// server, and a canceled wait as a client cancellation. The Retry-After
// value is mirrored in the JSON body as retry_after_ms so retrying
// clients need not parse headers.
func (s *Server) failAdmission(w http.ResponseWriter, r *http.Request, err error) {
	reject := func(msg string) {
		ra := s.retryAfterHint()
		w.Header().Set("Retry-After", strconv.Itoa(int((ra+time.Second-1)/time.Second)))
		s.failed.Inc()
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": msg, "retry_after_ms": ra.Milliseconds(),
		})
	}
	switch {
	case errors.Is(err, errQueueFull):
		reject("compile queue full; retry later")
	case errors.Is(err, errQuotaExceeded):
		reject(err.Error())
	case errors.Is(err, errDraining):
		s.fail(w, &apiError{Status: http.StatusServiceUnavailable, Message: "server is draining"})
	default: // context canceled while queued
		s.failCompile(w, r, fmt.Errorf("%w: %v", hilight.ErrCanceled, err))
	}
}

// failCompile maps compile errors onto HTTP statuses: client disconnects
// and deadlines to 499/504, semantic failures to 422.
func (s *Server) failCompile(w http.ResponseWriter, r *http.Request, err error) {
	var capErr *hilight.ErrInsufficientCapacity
	var routeErr *hilight.ErrUnroutable
	switch {
	case errors.Is(err, hilight.ErrCanceled):
		if r.Context().Err() != nil {
			// The client went away mid-compile; nobody will read the
			// response, but the status code keeps logs/metrics honest.
			s.canceled.Inc()
			s.failed.Inc()
			writeJSON(w, statusClientClosedRequest, errorBody(err.Error()))
			return
		}
		s.fail(w, &apiError{Status: http.StatusGatewayTimeout, Message: err.Error()})
	case errors.As(err, &capErr), errors.As(err, &routeErr):
		s.fail(w, &apiError{Status: http.StatusUnprocessableEntity, Message: err.Error()})
	default:
		s.fail(w, &apiError{Status: http.StatusInternalServerError, Message: err.Error()})
	}
}

// statusClientClosedRequest is nginx's conventional status for a client
// that disconnected before the response; there is no standard code.
const statusClientClosedRequest = 499

// fail renders err as the JSON error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.failed.Inc()
	ae, ok := err.(*apiError)
	if !ok {
		ae = &apiError{Status: 500, Message: err.Error()}
	}
	writeJSON(w, ae.Status, errorBody(ae.Message))
}

func errorBody(msg string) map[string]string { return map[string]string{"error": msg} }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A mid-stream encode failure means the client is gone; nothing to do.
	_ = enc.Encode(v)
}
