package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hilight/internal/obs"
)

// errStalled is the typed cause a watchdog abort plants in its context:
// handlers map it onto 504 and the aborted counter, distinguishing a
// stuck compile from an ordinary deadline or client disconnect.
var errStalled = errors.New("service: compile stalled")

// watchdog detects stuck compiles at the service level. The router's
// own stuck-progress check catches a router that cycles without placing
// braids; the watchdog catches everything that check cannot see — a
// pass spinning before routing starts, a livelocked search, a wedged
// test hook — by demanding observable routing-cycle progress within
// every window of wall time.
//
// A zero window (or nil watchdog) disables it: guard degenerates to a
// passthrough with no goroutine.
type watchdog struct {
	window  time.Duration
	fired   *obs.Counter
	aborted *obs.Counter
	events  obs.EventObserver
}

func newWatchdog(window time.Duration, m *obs.Registry, events obs.EventObserver) *watchdog {
	return &watchdog{
		window:  window,
		fired:   m.Counter("service/watchdog/fired"),
		aborted: m.Counter("service/watchdog/aborted"),
		events:  events,
	}
}

// guard wraps ctx with the watchdog: the returned progress func must be
// ticked on every routing cycle (wire it into WithObserver), and stop
// must be called when the compile returns. If a full window elapses
// with no tick, the watchdog cancels the returned context with an
// errStalled cause, increments service/watchdog/fired, and emits a
// WatchdogFired event labeled with label. Detection lands between one
// and two windows after the last tick.
func (w *watchdog) guard(ctx context.Context, label string) (context.Context, func(), func()) {
	if w == nil || w.window <= 0 {
		return ctx, func() {}, func() {}
	}
	gctx, cancel := context.WithCancelCause(ctx)
	var ticks atomic.Int64
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(w.window)
		defer t.Stop()
		var last int64
		for {
			select {
			case <-done:
				return
			case <-gctx.Done():
				return
			case <-t.C:
				// The compile may have finished (stop closed done) in the
				// same instant the tick fired; Go's select picks randomly
				// between ready cases, so re-check done before treating the
				// silence as a stall. Without this a compile finishing right
				// at a tick boundary could be spuriously counted as fired
				// and its (already released) context canceled with a stall
				// cause.
				select {
				case <-done:
					return
				default:
				}
				cur := ticks.Load()
				if cur == last {
					cause := fmt.Errorf("%w: no routing-cycle progress within %s (%s)",
						errStalled, w.window, label)
					w.fired.Inc()
					if w.events != nil {
						w.events.OnEvent(obs.Event{
							Kind: obs.WatchdogFired, Job: -1,
							Method: label, Duration: w.window, Err: cause,
						})
					}
					cancel(cause)
					return
				}
				last = cur
			}
		}
	}()
	stop := sync.OnceFunc(func() {
		close(done)
		cancel(nil)
	})
	return gctx, func() { ticks.Add(1) }, stop
}

// stalled reports whether ctx was aborted by the watchdog.
func stalled(ctx context.Context) bool {
	return errors.Is(context.Cause(ctx), errStalled)
}
