package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hilight/internal/obs"
)

// bootJournaled boots a journal-backed test server WITHOUT the automatic
// cleanup newTestServer installs: restart tests stop and reboot servers
// themselves, and crash tests must skip the graceful shutdown entirely.
func bootJournaled(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.JournalDir = dir
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, httptest.NewServer(s.Handler())
}

func stopGracefully(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// submitBatch posts a small async batch and returns the ack.
func submitBatch(t *testing.T, url string, benchmarks ...string) (id string, fps []string) {
	t.Helper()
	jobs := make([]map[string]any, len(benchmarks))
	for i, b := range benchmarks {
		jobs[i] = map[string]any{"benchmark": b}
	}
	resp, body := postJSON(t, url+"/v1/jobs", map[string]any{"jobs": jobs, "compact": true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		ID           string   `json:"id"`
		Count        int      `json:"count"`
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatalf("ack: %v: %s", err, body)
	}
	if ack.Count != len(benchmarks) || len(ack.Fingerprints) != len(benchmarks) {
		t.Fatalf("ack = %+v, want %d jobs with fingerprints", ack, len(benchmarks))
	}
	return ack.ID, ack.Fingerprints
}

// pollDone polls the batch until it reports done and returns the final
// response body.
func pollDone(t *testing.T, url, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := getBody(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d: %s", id, resp.StatusCode, body)
		}
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("poll: %v: %s", err, body)
		}
		if st.Status == "done" {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch %s never finished: %s", id, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalReplayDeterminism is the replay-twice check: a journaled
// batch must answer GET /v1/jobs/{id} byte-for-byte identically after
// every restart, and each result must carry the fingerprint the ack
// promised.
func TestJournalReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	s, ts := bootJournaled(t, dir, Config{Workers: 2})
	id, fps := submitBatch(t, ts.URL, "rd32_270", "4gt11_82", "alu-v0_26")
	first := pollDone(t, ts.URL, id)
	stopGracefully(t, s, ts)

	for round := 1; round <= 2; round++ {
		s, ts = bootJournaled(t, dir, Config{Workers: 2})
		replayed := pollDone(t, ts.URL, id)
		if !bytes.Equal(first, replayed) {
			t.Fatalf("replay %d: poll body diverged\nfirst: %s\nreplay: %s", round, first, replayed)
		}
		stopGracefully(t, s, ts)
	}

	var st jobStatus
	if err := json.Unmarshal(first, &st); err != nil {
		t.Fatal(err)
	}
	for i, r := range st.Results {
		if r.Result == nil {
			t.Fatalf("job %d failed: %s", i, r.Error)
		}
		if r.Result.Fingerprint != fps[i] {
			t.Fatalf("job %d fingerprint %q, want acked %q", i, r.Result.Fingerprint, fps[i])
		}
	}
}

// TestJournalKillMidBatchNoLoss crashes the daemon right after the 202
// ack and asserts the next life finishes the batch under the same id:
// zero acknowledged jobs lost, fingerprints as promised.
func TestJournalKillMidBatchNoLoss(t *testing.T) {
	dir := t.TempDir()
	s, ts := bootJournaled(t, dir, Config{Workers: 2})
	id, fps := submitBatch(t, ts.URL, "rd32_270", "4gt11_82", "4gt5_75", "alu-v0_26")

	// Crash: no drain, no journal flush beyond what already fsynced.
	ts.Close()
	s.Kill()

	s2, ts2 := bootJournaled(t, dir, Config{Workers: 2})
	body := pollDone(t, ts2.URL, id)
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != len(fps) || len(st.Results) != len(fps) {
		t.Fatalf("resurrected batch has %d/%d results, want %d", len(st.Results), st.Count, len(fps))
	}
	for i, r := range st.Results {
		if r.Result == nil {
			t.Fatalf("job %d lost to the crash: %s", i, r.Error)
		}
		if r.Result.Fingerprint != fps[i] {
			t.Fatalf("job %d fingerprint %q, want acked %q", i, r.Result.Fingerprint, fps[i])
		}
	}
	stopGracefully(t, s2, ts2)
	waitNoCompileGoroutines(t)
}

// TestJournalResurrectionRerunsOnlyIncomplete doctors a finished
// journal — deleting the terminal record and one job's completion — and
// asserts the replay serves the surviving completion byte-identically
// while re-running only the missing job.
func TestJournalResurrectionRerunsOnlyIncomplete(t *testing.T) {
	dir := t.TempDir()
	s, ts := bootJournaled(t, dir, Config{Workers: 2})
	id, fps := submitBatch(t, ts.URL, "rd32_270", "4gt11_82")
	before := pollDone(t, ts.URL, id)
	stopGracefully(t, s, ts)

	// Emulate a crash that lost job 1's completion and the seal: keep
	// the submit record and job 0's completion only.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Kind == recDone || (rec.Kind == recJob && rec.Job == 1) {
			continue
		}
		kept = append(kept, line)
	}
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.NewRegistry()
	s2, ts2 := bootJournaled(t, dir, Config{Workers: 2, Metrics: m, CacheBytes: -1})
	after := pollDone(t, ts2.URL, id)

	var stBefore, stAfter jobStatus
	if err := json.Unmarshal(before, &stBefore); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &stAfter); err != nil {
		t.Fatal(err)
	}
	b0, _ := json.Marshal(stBefore.Results[0])
	a0, _ := json.Marshal(stAfter.Results[0])
	if !bytes.Equal(b0, a0) {
		t.Fatalf("journaled job 0 not served verbatim:\nbefore: %s\nafter: %s", b0, a0)
	}
	if stAfter.Results[1].Result == nil {
		t.Fatalf("re-run job 1 failed: %s", stAfter.Results[1].Error)
	}
	if stAfter.Results[1].Result.Fingerprint != fps[1] {
		t.Fatalf("re-run job 1 fingerprint %q, want acked %q", stAfter.Results[1].Result.Fingerprint, fps[1])
	}
	snap := m.Snapshot()
	if v, _ := snap.Counter("journal/replayed-jobs"); v != 1 {
		t.Errorf("journal/replayed-jobs = %d, want 1", v)
	}
	if v, _ := snap.Counter("journal/rerun-jobs"); v != 1 {
		t.Errorf("journal/rerun-jobs = %d, want 1", v)
	}
	if v, _ := snap.Counter("journal/resurrected-batches"); v != 1 {
		t.Errorf("journal/resurrected-batches = %d, want 1", v)
	}
	stopGracefully(t, s2, ts2)
	waitNoCompileGoroutines(t)
}

// TestJournalTornTail appends garbage and a partial line to a valid
// journal and asserts replay stops cleanly at the damage, counts it,
// and compaction scrubs it from disk.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	s, ts := bootJournaled(t, dir, Config{Workers: 2})
	id, _ := submitBatch(t, ts.URL, "rd32_270")
	pollDone(t, ts.URL, id)
	stopGracefully(t, s, ts)

	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn write: half a JSON object with no newline.
	if _, err := f.WriteString(`{"kind":"job","id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m := obs.NewRegistry()
	s2, ts2 := bootJournaled(t, dir, Config{Workers: 2, Metrics: m})
	pollDone(t, ts2.URL, id) // the intact batch replays fine
	if v, _ := m.Snapshot().Counter("journal/torn-records"); v != 1 {
		t.Errorf("journal/torn-records = %d, want 1", v)
	}
	stopGracefully(t, s2, ts2)

	// Compaction ran before the new process appended: every surviving
	// line must parse.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("post-compaction line %q does not parse: %v", sc.Text(), err)
		}
	}
}

// TestJournalEvictionSurvivesReplay fills the store past MaxStoredJobs
// and asserts a restart converges on the same retained set: evicted
// batches 404 before AND after the restart, retained ones answer.
func TestJournalEvictionSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s, ts := bootJournaled(t, dir, Config{Workers: 2, MaxStoredJobs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id, _ := submitBatch(t, ts.URL, "rd32_270")
		pollDone(t, ts.URL, id)
		ids = append(ids, id)
	}
	status := func(url string) []int {
		codes := make([]int, len(ids))
		for i, id := range ids {
			resp, _ := getBody(t, url+"/v1/jobs/"+id)
			codes[i] = resp.StatusCode
		}
		return codes
	}
	before := status(ts.URL)
	stopGracefully(t, s, ts)

	s2, ts2 := bootJournaled(t, dir, Config{Workers: 2, MaxStoredJobs: 2})
	after := status(ts2.URL)
	for i := range ids {
		if before[i] != after[i] {
			t.Errorf("batch %s: %d before restart, %d after", ids[i], before[i], after[i])
		}
	}
	// The newest batches survived; ids never collide with evicted ones.
	if after[len(after)-1] != http.StatusOK {
		t.Errorf("newest batch gone after restart: %v", after)
	}
	id5, _ := submitBatch(t, ts2.URL, "rd32_270")
	for _, old := range ids {
		if id5 == old {
			t.Fatalf("post-restart submit reused id %s", id5)
		}
	}
	pollDone(t, ts2.URL, id5)
	stopGracefully(t, s2, ts2)
}
