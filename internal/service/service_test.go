package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hilight"
)

// newTestServer boots a Server on an httptest listener and tears it
// down (with a leak check) when the test ends.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		waitNoCompileGoroutines(t)
	})
	return s, ts
}

// waitNoCompileGoroutines is the leak-check helper: it polls the process
// stack dump until no goroutine is inside the compiler or the service's
// compile/admission paths, failing the test if any survives the grace
// period.
func waitNoCompileGoroutines(t *testing.T) {
	t.Helper()
	patterns := []string{
		"hilight.Compile(",
		"hilight.CompileAll(",
		"hilight/internal/core.Run(",
		"service.(*Server).handleCompile(",
		"service.(*admission).acquire(",
		"service.(*jobStore).run(",
		"service.(*watchdog).guard.",
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		dump := string(buf[:n])
		leaked := ""
		for _, g := range strings.Split(dump, "\n\n") {
			for _, p := range patterns {
				if strings.Contains(g, p) {
					leaked = g
				}
			}
		}
		if leaked == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leaked past shutdown:\n%s", leaked)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestCompileAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := map[string]any{"benchmark": "QFT-16", "compact": true}
	resp, body := postJSON(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first compileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first response claims cached")
	}
	if first.Fingerprint == "" || first.LatencyCycles <= 0 || first.Method != "hilight" {
		t.Errorf("malformed response: %+v", first)
	}
	if len(first.Trace) == 0 {
		t.Error("response missing pipeline trace")
	}
	// The schedule payload round-trips through the public decoder and
	// validates against the benchmark circuit.
	sched, err := hilight.DecodeScheduleJSON(first.Schedule)
	if err != nil {
		t.Fatalf("returned schedule undecodable: %v", err)
	}
	if sched == nil || len(sched.Layers) != first.LatencyCycles {
		t.Errorf("schedule layers %d != latency %d", len(sched.Layers), first.LatencyCycles)
	}

	// An identical second request is served from the cache.
	resp2, body2 := postJSON(t, ts.URL+"/v1/compile", req)
	if resp2.StatusCode != 200 {
		t.Fatalf("second status %d", resp2.StatusCode)
	}
	var second compileResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request was not a cache hit")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Error("fingerprint changed between identical requests")
	}
	if !bytes.Equal(second.Schedule, first.Schedule) {
		t.Error("cached schedule differs from compiled schedule")
	}

	// A different seed misses the cache.
	resp3, body3 := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "QFT-16", "compact": true, "seed": 2})
	if resp3.StatusCode != 200 {
		t.Fatalf("third status %d: %s", resp3.StatusCode, body3)
	}
	var third compileResponse
	if err := json.Unmarshal(body3, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.Fingerprint == first.Fingerprint {
		t.Error("different seed produced a cache hit")
	}

	// The cache counters are visible on /metrics in Prometheus form.
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "cache_hits_total 1") {
		t.Errorf("metrics missing cache_hits_total 1:\n%s", metrics)
	}
}

func TestCompileQASMAndDefects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	qasm := "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\n"
	req := map[string]any{
		"qasm":    qasm,
		"grid":    map[string]any{"w": 3, "h": 3},
		"defects": map[string]any{"tiles": []int{8}},
	}
	resp, body := postJSON(t, ts.URL+"/v1/compile", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr compileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	sched, err := hilight.DecodeScheduleJSON(cr.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Grid == nil || !sched.Grid.TileDefective(8) {
		t.Error("schedule lost the defect map")
	}
}

func TestCompileRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-json", "{", 400},
		{"empty", "{}", 400},
		{"both-sources", `{"qasm":"x","benchmark":"QFT-16"}`, 400},
		{"unknown-benchmark", `{"benchmark":"nope"}`, 400},
		{"unknown-method", `{"benchmark":"QFT-16","method":"nope"}`, 400},
		{"unknown-fallback", `{"benchmark":"QFT-16","fallback":["nope"]}`, 400},
		{"unknown-field", `{"benchmark":"QFT-16","bogus":1}`, 400},
		{"half-grid", `{"benchmark":"QFT-16","grid":{"w":5}}`, 400},
		{"bad-grid-kind", `{"benchmark":"QFT-16","grid":{"kind":"hex"}}`, 400},
		{"huge-route-workers", `{"benchmark":"QFT-16","route_workers":100000}`, 400},
		{"negative-lookahead", `{"benchmark":"QFT-16","lookahead":-1}`, 400},
		{"capacity", `{"benchmark":"QFT-16","grid":{"w":2,"h":2}}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			out, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.want, out)
			}
			var env map[string]string
			if err := json.Unmarshal(out, &env); err != nil || env["error"] == "" {
				t.Errorf("missing error envelope: %s", out)
			}
		})
	}
}

// TestCompileRouteKnobsShareCacheEntry pins the service-level face of the
// fingerprint contract: requests differing only in route_workers and
// lookahead share a cache entry, and the parallel pass hands back the
// same schedule bytes at every pool size — so serving a cached schedule
// compiled under different concurrency settings is sound.
func TestCompileRouteKnobsShareCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := map[string]any{"benchmark": "QFT-16", "method": "hilight-parallel"}
	resp, body := postJSON(t, ts.URL+"/v1/compile", base)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first compileResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}

	knobbed := map[string]any{"benchmark": "QFT-16", "method": "hilight-parallel", "route_workers": 2, "lookahead": 2}
	resp2, body2 := postJSON(t, ts.URL+"/v1/compile", knobbed)
	if resp2.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	var second compileResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("route knobs changed the fingerprint: %s vs %s", second.Fingerprint, first.Fingerprint)
	}
	if !second.Cached {
		t.Error("knobbed request missed the cache entry its fingerprint names")
	}

	// Bypassing the cache and actually recompiling with different workers
	// still yields the same schedule bytes (the determinism contract).
	recompiled := map[string]any{"benchmark": "QFT-16", "method": "hilight-parallel", "route_workers": 3, "no_cache": true}
	resp3, body3 := postJSON(t, ts.URL+"/v1/compile", recompiled)
	if resp3.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp3.StatusCode, body3)
	}
	var third compileResponse
	if err := json.Unmarshal(body3, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("no_cache request reported a cache hit")
	}
	if !bytes.Equal(third.Schedule, first.Schedule) {
		t.Error("recompiling with a different worker count changed the schedule bytes")
	}
}

func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Occupy the worker slot and the single queue ticket directly so the
	// next request deterministically sees a full queue.
	rel1, err := s.admit.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan func(), 1)
	go func() {
		rel, err := s.admit.acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		queued <- rel
	}()
	waitGauge(t, s.Metrics(), "service/queued", 1)

	resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "QFT-10"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if v, _ := s.Metrics().Snapshot().Counter("service/rejected"); v < 1 {
		t.Error("rejection not metered")
	}

	rel1()
	rel := <-queued
	rel()

	// With capacity back, the same request compiles fine.
	resp2, body2 := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "QFT-10"})
	if resp2.StatusCode != 200 {
		t.Fatalf("status after capacity freed: %d (%s)", resp2.StatusCode, body2)
	}
}

func TestDrainRejectsAndReadyzFlips(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz not ready at boot: %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz failed: %d", resp.StatusCode)
	}
	s.Drain()
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/compile", map[string]any{"benchmark": "QFT-10"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("compile during drain = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": []any{map[string]any{"benchmark": "QFT-10"}}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("jobs submit during drain = %d, want 503", resp.StatusCode)
	}
	// healthz keeps answering during drain: the process is alive.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz during drain should stay 200")
	}
}

// TestClientDisconnectMidCompile is the serving-boundary cancellation
// contract: a client that goes away mid-compile must cancel the compile
// promptly (ErrCanceled inside, the canceled metric outside) and leak no
// goroutine.
func TestClientDisconnectMidCompile(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"benchmark":"QFT-150","no_cache":true}`
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/compile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request unexpectedly succeeded with %d", resp.StatusCode)
		}
		errc <- err
	}()

	// Wait until the compile is actually in flight, then hang up.
	waitGauge(t, s.Metrics(), "service/inflight", 1)
	cancel()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context cancellation", err)
	}

	// The server notices promptly: the canceled metric ticks and the
	// in-flight gauge returns to zero well before the compile could have
	// finished on its own.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Metrics().Snapshot()
		canceled, _ := snap.Counter("service/requests-canceled")
		inflight, _ := snap.Gauge("service/inflight")
		if canceled == 1 && inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancellation not observed: canceled=%d inflight=%d", canceled, inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitNoCompileGoroutines(t)
}

func TestJobsAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []any{
			map[string]any{"benchmark": "QFT-10"},
			map[string]any{"benchmark": "BV-10", "grid": map[string]any{"kind": "square"}},
		},
		"seed": 3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		ID    string `json:"id"`
		Count int    `json:"count"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Count != 2 {
		t.Fatalf("bad submit response: %s", body)
	}

	var st jobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := getBody(t, ts.URL+"/v1/jobs/"+sub.ID)
		if resp.StatusCode != 200 {
			t.Fatalf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Finished != 2 || len(st.Results) != 2 {
		t.Fatalf("done status malformed: %+v", st)
	}
	for i, r := range st.Results {
		if r.Error != "" {
			t.Fatalf("job %d failed: %s", i, r.Error)
		}
		if r.Result == nil || len(r.Result.Schedule) == 0 {
			t.Fatalf("job %d has no schedule", i)
		}
		if _, err := hilight.DecodeScheduleJSON(r.Result.Schedule); err != nil {
			t.Fatalf("job %d schedule undecodable: %v", i, err)
		}
	}

	// Unknown id and empty batch fail cleanly.
	if resp, _ := getBody(t, ts.URL+"/v1/jobs/job-999999"); resp.StatusCode != 404 {
		t.Errorf("unknown job id status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": []any{}}); resp.StatusCode != 400 {
		t.Errorf("empty batch status %d, want 400", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": []any{map[string]any{"benchmark": "nope"}}}); resp.StatusCode != 400 {
		t.Errorf("bad entry status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/methods")
	if resp.StatusCode != 200 {
		t.Fatalf("methods status %d", resp.StatusCode)
	}
	var methods struct {
		Methods []string `json:"methods"`
	}
	if err := json.Unmarshal(body, &methods); err != nil {
		t.Fatal(err)
	}
	if len(methods.Methods) == 0 || !slicesContains(methods.Methods, "hilight") {
		t.Errorf("methods list missing hilight: %v", methods.Methods)
	}

	resp, body = getBody(t, ts.URL+"/v1/benchmarks")
	if resp.StatusCode != 200 {
		t.Fatalf("benchmarks status %d", resp.StatusCode)
	}
	var benches struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.Unmarshal(body, &benches); err != nil {
		t.Fatal(err)
	}
	if !slicesContains(benches.Benchmarks, "QFT-100") {
		t.Errorf("benchmarks list missing QFT-100: %v", benches.Benchmarks)
	}

	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metrics endpoint: status %d, type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "service_requests_total") {
		t.Errorf("metrics missing service family:\n%s", body)
	}
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
