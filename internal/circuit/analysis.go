package circuit

import "sort"

// InteractionMatrix is the circGraph of Alg. 1: entry [i][j] counts the
// two-qubit gates between program qubits i and j (symmetric, zero
// diagonal). The paper adopts this flat matrix representation instead of a
// node/edge graph precisely because it is cheap to build and scan.
type InteractionMatrix struct {
	N      int
	Counts []int // row-major N×N
}

// NewInteractionMatrix builds the CX interaction matrix of c.
func NewInteractionMatrix(c *Circuit) *InteractionMatrix {
	m := &InteractionMatrix{N: c.NumQubits, Counts: make([]int, c.NumQubits*c.NumQubits)}
	for _, g := range c.Gates {
		if g.TwoQubit() {
			m.Counts[g.Q0*m.N+g.Q1]++
			m.Counts[g.Q1*m.N+g.Q0]++
		}
	}
	return m
}

// At returns the interaction count between qubits i and j.
func (m *InteractionMatrix) At(i, j int) int { return m.Counts[i*m.N+j] }

// Degree returns the number of distinct partners of qubit q.
func (m *InteractionMatrix) Degree(q int) int {
	d := 0
	for j := 0; j < m.N; j++ {
		if m.Counts[q*m.N+j] > 0 {
			d++
		}
	}
	return d
}

// WeightSum returns the total interaction count of qubit q (sum of row q).
func (m *InteractionMatrix) WeightSum(q int) int {
	s := 0
	for j := 0; j < m.N; j++ {
		s += m.Counts[q*m.N+j]
	}
	return s
}

// Neighbors returns the partners of qubit q sorted by descending
// interaction count, ties broken by ascending qubit index. This is the
// SortByMaxDegree(circQueue[q]) step of Alg. 1.
func (m *InteractionMatrix) Neighbors(q int) []int {
	var out []int
	for j := 0; j < m.N; j++ {
		if m.Counts[q*m.N+j] > 0 {
			out = append(out, j)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		wa, wb := m.Counts[q*m.N+out[a]], m.Counts[q*m.N+out[b]]
		if wa != wb {
			return wa > wb
		}
		return out[a] < out[b]
	})
	return out
}

// QueueByDegree returns all qubits sorted by descending degree, ties broken
// by descending weight sum then ascending index: the circQueue of Alg. 1.
// Qubits that never interact sort last.
func (m *InteractionMatrix) QueueByDegree() []int {
	out := make([]int, m.N)
	deg := make([]int, m.N)
	wsum := make([]int, m.N)
	for q := range out {
		out[q] = q
		deg[q] = m.Degree(q)
		wsum[q] = m.WeightSum(q)
	}
	sort.SliceStable(out, func(a, b int) bool {
		qa, qb := out[a], out[b]
		if deg[qa] != deg[qb] {
			return deg[qa] > deg[qb]
		}
		if wsum[qa] != wsum[qb] {
			return wsum[qa] > wsum[qb]
		}
		return qa < qb
	})
	return out
}

// IsLinearChain reports whether the interaction graph is a single simple
// path covering all interacting qubits — the shape for which the paper's
// pattern matching selects the linear layout (1D Ising, GHZ, W, VQE,
// graph-state circuits). Isolated qubits are permitted; they simply ride
// along. The second return value is the chain order when linear.
func (m *InteractionMatrix) IsLinearChain() (bool, []int) {
	var ends []int
	active := 0
	for q := 0; q < m.N; q++ {
		switch d := m.Degree(q); {
		case d == 0:
			continue
		case d == 1:
			ends = append(ends, q)
			active++
		case d == 2:
			active++
		default:
			return false, nil
		}
	}
	if active == 0 || len(ends) != 2 {
		return false, nil
	}
	// Walk from one end; a cycle or a second component fails the walk.
	start := ends[0]
	order := []int{start}
	prev, cur := -1, start
	for {
		next := -1
		for j := 0; j < m.N; j++ {
			if j != prev && m.Counts[cur*m.N+j] > 0 {
				if next != -1 {
					return false, nil
				}
				next = j
			}
		}
		if next == -1 {
			break
		}
		order = append(order, next)
		prev, cur = cur, next
	}
	if len(order) != active {
		return false, nil
	}
	// Append isolated qubits in index order so the layout is total.
	for q := 0; q < m.N; q++ {
		if m.Degree(q) == 0 {
			order = append(order, q)
		}
	}
	return true, order
}

// Density returns the fraction of realized qubit pairs: 1.0 means a
// complete interaction graph (QFT-like). Used by pattern matching to pick
// the random layout for dynamic-interaction algorithms.
func (m *InteractionMatrix) Density() float64 {
	if m.N < 2 {
		return 0
	}
	pairs := 0
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if m.Counts[i*m.N+j] > 0 {
				pairs++
			}
		}
	}
	return float64(pairs) / float64(m.N*(m.N-1)/2)
}

// QubitLists is the circList of Alg. 2: for every program qubit, the
// indices (into Circuit.Gates) of the gates touching it, in program order.
// The routing loop consumes these lists front-to-back via per-qubit
// cursors.
type QubitLists struct {
	Lists [][]int
}

// NewQubitLists builds the per-qubit gate lists of c.
func NewQubitLists(c *Circuit) *QubitLists {
	ql := &QubitLists{}
	ql.Fill(c)
	return ql
}

// Fill rebuilds the per-qubit gate lists of c in place, reusing the list
// storage from a previous Fill so steady-state rebuilds do not allocate.
func (ql *QubitLists) Fill(c *Circuit) {
	if cap(ql.Lists) < c.NumQubits {
		ql.Lists = make([][]int, c.NumQubits)
	}
	ql.Lists = ql.Lists[:c.NumQubits]
	for q := range ql.Lists {
		ql.Lists[q] = ql.Lists[q][:0]
	}
	for i, g := range c.Gates {
		ql.Lists[g.Q0] = append(ql.Lists[g.Q0], i)
		if g.TwoQubit() {
			ql.Lists[g.Q1] = append(ql.Lists[g.Q1], i)
		}
	}
}

// Layers performs ASAP layering of the circuit: gates that commute by
// construction (touch disjoint qubits) share a layer. Only two-qubit gates
// consume depth; single-qubit gates are folded into the layer of the
// preceding gate on their qubit. The result maps gate index -> layer and
// also returns the depth (number of two-qubit layers).
func Layers(c *Circuit) (layerOf []int, depth int) {
	layerOf = make([]int, len(c.Gates))
	avail := make([]int, c.NumQubits) // earliest layer a qubit is free at
	for i, g := range c.Gates {
		if !g.TwoQubit() {
			// Zero-cost: occupies the qubit's current availability point.
			layerOf[i] = avail[g.Q0]
			continue
		}
		l := avail[g.Q0]
		if avail[g.Q1] > l {
			l = avail[g.Q1]
		}
		layerOf[i] = l
		avail[g.Q0] = l + 1
		avail[g.Q1] = l + 1
		if l+1 > depth {
			depth = l + 1
		}
	}
	return layerOf, depth
}
