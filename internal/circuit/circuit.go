// Package circuit defines the quantum-circuit intermediate representation
// shared by every stage of the HiLight framework: the gate model, the
// circuit container, per-qubit gate lists used by the routing loop
// (Alg. 2 of the paper), and the CX interaction matrix used by the
// qubit-proximity initial placement (Alg. 1).
//
// The mapping problem only depends on gate order and on which qubit pairs
// interact, so the IR is deliberately small: a flat gate slice plus derived
// views. All derived structures index into Circuit.Gates by position.
package circuit

import (
	"fmt"
	"strings"
)

// Kind enumerates the gate kinds understood by the framework. Single-qubit
// kinds route in zero braiding steps; two-qubit kinds require a braiding
// path. SWAP is accepted at the IR level but is decomposed into three CX
// gates before mapping (the double-defect SC has no native SWAP).
type Kind uint8

// Gate kinds. The single-/two-qubit split is what the mapper cares about;
// the distinction between, say, H and T only matters for QASM round-trips
// and semantic checks.
const (
	Invalid Kind = iota

	// Single-qubit gates.
	I
	H
	X
	Y
	Z
	S
	Sdg
	T
	Tdg
	RX
	RY
	RZ
	U1
	U2
	U3
	Measure
	Reset

	// Two-qubit gates.
	CX
	CZ
	SWAP

	numKinds
)

var kindNames = [numKinds]string{
	Invalid: "invalid",
	I:       "id",
	H:       "h",
	X:       "x",
	Y:       "y",
	Z:       "z",
	S:       "s",
	Sdg:     "sdg",
	T:       "t",
	Tdg:     "tdg",
	RX:      "rx",
	RY:      "ry",
	RZ:      "rz",
	U1:      "u1",
	U2:      "u2",
	U3:      "u3",
	Measure: "measure",
	Reset:   "reset",
	CX:      "cx",
	CZ:      "cz",
	SWAP:    "swap",
}

// String returns the lowercase OpenQASM-style mnemonic for the kind.
func (k Kind) String() string {
	if k >= numKinds {
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// TwoQubit reports whether gates of this kind act on two qubits.
func (k Kind) TwoQubit() bool {
	switch k {
	case CX, CZ, SWAP:
		return true
	}
	return false
}

// Parameterized reports whether gates of this kind carry rotation angles.
func (k Kind) Parameterized() bool {
	switch k {
	case RX, RY, RZ, U1, U2, U3:
		return true
	}
	return false
}

// KindByName resolves an OpenQASM mnemonic ("cx", "h", ...) to a Kind.
// The second result is false if the mnemonic is unknown.
func KindByName(name string) (Kind, bool) {
	for k := Kind(1); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return Invalid, false
}

// Gate is a single operation on one or two program qubits. For two-qubit
// kinds, Q0 is the control and Q1 the target (for CZ and SWAP the roles are
// symmetric but the fields keep operand order). Params holds rotation
// angles for parameterized kinds; unused entries are zero.
type Gate struct {
	Kind   Kind
	Q0, Q1 int
	Params [3]float64
}

// NewGate1 builds a single-qubit gate.
func NewGate1(k Kind, q int) Gate { return Gate{Kind: k, Q0: q, Q1: -1} }

// NewGate2 builds a two-qubit gate with control c and target t.
func NewGate2(k Kind, c, t int) Gate { return Gate{Kind: k, Q0: c, Q1: t} }

// TwoQubit reports whether the gate acts on two qubits.
func (g Gate) TwoQubit() bool { return g.Kind.TwoQubit() }

// Control returns the control qubit of a two-qubit gate.
func (g Gate) Control() int { return g.Q0 }

// Target returns the target qubit of a two-qubit gate, or the sole operand
// of a single-qubit gate.
func (g Gate) Target() int {
	if g.TwoQubit() {
		return g.Q1
	}
	return g.Q0
}

// Qubits returns the operands of the gate (one or two entries).
func (g Gate) Qubits() []int {
	if g.TwoQubit() {
		return []int{g.Q0, g.Q1}
	}
	return []int{g.Q0}
}

// ActsOn reports whether the gate touches qubit q.
func (g Gate) ActsOn(q int) bool {
	return g.Q0 == q || (g.TwoQubit() && g.Q1 == q)
}

// String renders the gate in a QASM-like form, e.g. "cx q[0],q[3]".
func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Kind.String())
	if g.Kind.Parameterized() {
		fmt.Fprintf(&b, "(%g)", g.Params[0])
	}
	fmt.Fprintf(&b, " q[%d]", g.Q0)
	if g.TwoQubit() {
		fmt.Fprintf(&b, ",q[%d]", g.Q1)
	}
	return b.String()
}

// Circuit is an ordered gate sequence over NumQubits program qubits.
// The zero value is an empty circuit on zero qubits.
type Circuit struct {
	Name      string
	NumQubits int
	Gates     []Gate
}

// New returns an empty circuit on n qubits.
func New(name string, n int) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// Append adds gates to the end of the circuit. It panics if a gate operand
// is out of range; circuits are built programmatically and an out-of-range
// operand is a bug in the generator, not a recoverable condition.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		if err := c.checkGate(g); err != nil {
			panic(fmt.Sprintf("circuit %q: %v", c.Name, err))
		}
		c.Gates = append(c.Gates, g)
	}
}

// Add1 appends a single-qubit gate of kind k on qubit q.
func (c *Circuit) Add1(k Kind, q int) { c.Append(NewGate1(k, q)) }

// Add2 appends a two-qubit gate of kind k with control ctl and target tgt.
func (c *Circuit) Add2(k Kind, ctl, tgt int) { c.Append(NewGate2(k, ctl, tgt)) }

// AddRot appends a parameterized single-qubit rotation.
func (c *Circuit) AddRot(k Kind, q int, theta float64) {
	g := NewGate1(k, q)
	g.Params[0] = theta
	c.Append(g)
}

// CXCount returns the number of two-qubit gates in the circuit.
func (c *Circuit) CXCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.TwoQubit() {
			n++
		}
	}
	return n
}

// Len returns the total gate count.
func (c *Circuit) Len() int { return len(c.Gates) }

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits}
	out.Gates = append([]Gate(nil), c.Gates...)
	return out
}

func (c *Circuit) checkGate(g Gate) error {
	if g.Kind == Invalid || g.Kind >= numKinds {
		return fmt.Errorf("invalid gate kind %d", g.Kind)
	}
	if g.Q0 < 0 || g.Q0 >= c.NumQubits {
		return fmt.Errorf("gate %v: qubit %d out of range [0,%d)", g, g.Q0, c.NumQubits)
	}
	if g.TwoQubit() {
		if g.Q1 < 0 || g.Q1 >= c.NumQubits {
			return fmt.Errorf("gate %v: qubit %d out of range [0,%d)", g, g.Q1, c.NumQubits)
		}
		if g.Q0 == g.Q1 {
			return fmt.Errorf("gate %v: identical operands", g)
		}
	}
	return nil
}

// Validate checks every gate in the circuit and returns the first problem
// found, or nil. Useful after parsing untrusted QASM.
func (c *Circuit) Validate() error {
	if c.NumQubits < 0 {
		return fmt.Errorf("negative qubit count %d", c.NumQubits)
	}
	for i, g := range c.Gates {
		if err := c.checkGate(g); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// DecomposeSWAPs returns a circuit in which every SWAP gate is replaced by
// its three-CX expansion. Other gates are copied unchanged. The receiver is
// not modified.
func (c *Circuit) DecomposeSWAPs() *Circuit {
	out := New(c.Name, c.NumQubits)
	for _, g := range c.Gates {
		if g.Kind == SWAP {
			out.Add2(CX, g.Q0, g.Q1)
			out.Add2(CX, g.Q1, g.Q0)
			out.Add2(CX, g.Q0, g.Q1)
			continue
		}
		out.Gates = append(out.Gates, g)
	}
	return out
}

// String renders the circuit one gate per line, prefixed with a header.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q: %d qubits, %d gates\n", c.Name, c.NumQubits, len(c.Gates))
	for _, g := range c.Gates {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
