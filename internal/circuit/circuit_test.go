package circuit

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{H: "h", CX: "cx", RZ: "rz", Sdg: "sdg", Measure: "measure"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind string = %q", got)
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Error("KindByName accepted unknown mnemonic")
	}
}

func TestKindTwoQubit(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		want := k == CX || k == CZ || k == SWAP
		if got := k.TwoQubit(); got != want {
			t.Errorf("%v.TwoQubit() = %v, want %v", k, got, want)
		}
	}
}

func TestGateAccessors(t *testing.T) {
	g := NewGate2(CX, 3, 7)
	if !g.TwoQubit() || g.Control() != 3 || g.Target() != 7 {
		t.Fatalf("CX accessors wrong: %+v", g)
	}
	if got := g.Qubits(); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("Qubits() = %v", got)
	}
	if !g.ActsOn(3) || !g.ActsOn(7) || g.ActsOn(5) {
		t.Fatal("ActsOn wrong for CX")
	}
	h := NewGate1(H, 2)
	if h.TwoQubit() || h.Target() != 2 || len(h.Qubits()) != 1 {
		t.Fatalf("H accessors wrong: %+v", h)
	}
}

func TestGateString(t *testing.T) {
	if got := NewGate2(CX, 0, 1).String(); got != "cx q[0],q[1]" {
		t.Errorf("CX string = %q", got)
	}
	g := NewGate1(RZ, 4)
	g.Params[0] = 0.5
	if got := g.String(); got != "rz(0.5) q[4]" {
		t.Errorf("RZ string = %q", got)
	}
}

func TestAppendValidation(t *testing.T) {
	c := New("t", 3)
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { c.Add1(H, 3) })
	mustPanic(func() { c.Add1(H, -1) })
	mustPanic(func() { c.Add2(CX, 1, 1) })
	mustPanic(func() { c.Append(Gate{Kind: Invalid}) })
	c.Add1(H, 0)
	c.Add2(CX, 0, 2)
	if c.Len() != 2 || c.CXCount() != 1 {
		t.Fatalf("len=%d cx=%d", c.Len(), c.CXCount())
	}
}

func TestValidate(t *testing.T) {
	c := New("v", 2)
	c.Add2(CX, 0, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	c.Gates = append(c.Gates, Gate{Kind: CX, Q0: 0, Q1: 9})
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range operand accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("c", 2)
	c.Add2(CX, 0, 1)
	d := c.Clone()
	d.Add1(H, 0)
	if c.Len() != 1 || d.Len() != 2 {
		t.Fatalf("clone shares storage: c=%d d=%d", c.Len(), d.Len())
	}
}

func TestDecomposeSWAPs(t *testing.T) {
	c := New("s", 3)
	c.Add1(H, 0)
	c.Add2(SWAP, 0, 2)
	c.Add2(CX, 1, 2)
	d := c.DecomposeSWAPs()
	if d.Len() != 5 {
		t.Fatalf("len = %d, want 5", d.Len())
	}
	wantKinds := []Kind{H, CX, CX, CX, CX}
	for i, g := range d.Gates {
		if g.Kind != wantKinds[i] {
			t.Errorf("gate %d kind = %v, want %v", i, g.Kind, wantKinds[i])
		}
	}
	// SWAP(0,2) -> CX(0,2), CX(2,0), CX(0,2)
	if d.Gates[1] != NewGate2(CX, 0, 2) || d.Gates[2] != NewGate2(CX, 2, 0) || d.Gates[3] != NewGate2(CX, 0, 2) {
		t.Errorf("swap expansion wrong: %v %v %v", d.Gates[1], d.Gates[2], d.Gates[3])
	}
}

func TestInteractionMatrix(t *testing.T) {
	c := New("m", 4)
	c.Add2(CX, 0, 1)
	c.Add2(CX, 1, 0)
	c.Add2(CX, 2, 3)
	c.Add1(H, 2)
	m := NewInteractionMatrix(c)
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Errorf("At(0,1) = %d, want 2", m.At(0, 1))
	}
	if m.At(2, 3) != 1 || m.At(0, 2) != 0 {
		t.Error("interaction counts wrong")
	}
	if m.Degree(0) != 1 || m.Degree(2) != 1 {
		t.Error("degrees wrong")
	}
	if m.WeightSum(1) != 2 {
		t.Errorf("WeightSum(1) = %d", m.WeightSum(1))
	}
}

func TestNeighborsSorted(t *testing.T) {
	c := New("n", 4)
	for i := 0; i < 3; i++ {
		c.Add2(CX, 0, 2)
	}
	c.Add2(CX, 0, 1)
	c.Add2(CX, 0, 3)
	c.Add2(CX, 0, 3)
	m := NewInteractionMatrix(c)
	got := m.Neighbors(0)
	want := []int{2, 3, 1} // weights 3, 2, 1
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
}

func TestQueueByDegree(t *testing.T) {
	c := New("q", 5)
	// q0 interacts with 1,2,3 (degree 3); q4 isolated.
	c.Add2(CX, 0, 1)
	c.Add2(CX, 0, 2)
	c.Add2(CX, 0, 3)
	c.Add2(CX, 1, 2)
	m := NewInteractionMatrix(c)
	q := m.QueueByDegree()
	if q[0] != 0 {
		t.Errorf("highest-degree qubit = %d, want 0", q[0])
	}
	if q[len(q)-1] != 4 {
		t.Errorf("isolated qubit should sort last, got %v", q)
	}
}

func TestIsLinearChain(t *testing.T) {
	// 0-1-2-3 chain.
	c := New("chain", 4)
	c.Add2(CX, 0, 1)
	c.Add2(CX, 1, 2)
	c.Add2(CX, 2, 3)
	m := NewInteractionMatrix(c)
	ok, order := m.IsLinearChain()
	if !ok {
		t.Fatal("chain not detected")
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	first, last := order[0], order[3]
	if !(first == 0 && last == 3 || first == 3 && last == 0) {
		t.Errorf("chain walk wrong: %v", order)
	}

	// Star is not a chain.
	s := New("star", 4)
	s.Add2(CX, 0, 1)
	s.Add2(CX, 0, 2)
	s.Add2(CX, 0, 3)
	if ok, _ := NewInteractionMatrix(s).IsLinearChain(); ok {
		t.Error("star misdetected as chain")
	}

	// Cycle is not a chain.
	cy := New("cycle", 3)
	cy.Add2(CX, 0, 1)
	cy.Add2(CX, 1, 2)
	cy.Add2(CX, 2, 0)
	if ok, _ := NewInteractionMatrix(cy).IsLinearChain(); ok {
		t.Error("cycle misdetected as chain")
	}

	// Two disjoint edges are not a single chain.
	d := New("disjoint", 4)
	d.Add2(CX, 0, 1)
	d.Add2(CX, 2, 3)
	if ok, _ := NewInteractionMatrix(d).IsLinearChain(); ok {
		t.Error("disjoint edges misdetected as chain")
	}
}

func TestIsLinearChainWithIsolated(t *testing.T) {
	c := New("chain+iso", 5)
	c.Add2(CX, 1, 3)
	c.Add2(CX, 3, 4)
	m := NewInteractionMatrix(c)
	ok, order := m.IsLinearChain()
	if !ok || len(order) != 5 {
		t.Fatalf("ok=%v order=%v", ok, order)
	}
	seen := map[int]bool{}
	for _, q := range order {
		seen[q] = true
	}
	if len(seen) != 5 {
		t.Errorf("order not a permutation: %v", order)
	}
}

func TestDensity(t *testing.T) {
	c := New("d", 3)
	c.Add2(CX, 0, 1)
	m := NewInteractionMatrix(c)
	if got := m.Density(); got < 0.33 || got > 0.34 {
		t.Errorf("density = %g, want 1/3", got)
	}
	full := New("full", 3)
	full.Add2(CX, 0, 1)
	full.Add2(CX, 0, 2)
	full.Add2(CX, 1, 2)
	if got := NewInteractionMatrix(full).Density(); got != 1 {
		t.Errorf("complete graph density = %g", got)
	}
}

func TestQubitLists(t *testing.T) {
	c := New("ql", 3)
	c.Add1(H, 0)     // gate 0
	c.Add2(CX, 0, 1) // gate 1
	c.Add2(CX, 1, 2) // gate 2
	c.Add1(T, 1)     // gate 3
	ql := NewQubitLists(c)
	want := [][]int{{0, 1}, {1, 2, 3}, {2}}
	for q, lst := range ql.Lists {
		if len(lst) != len(want[q]) {
			t.Fatalf("q%d list = %v, want %v", q, lst, want[q])
		}
		for i := range lst {
			if lst[i] != want[q][i] {
				t.Errorf("q%d list = %v, want %v", q, lst, want[q])
			}
		}
	}
}

func TestLayers(t *testing.T) {
	c := New("layers", 4)
	c.Add2(CX, 0, 1) // layer 0
	c.Add2(CX, 2, 3) // layer 0 (disjoint)
	c.Add2(CX, 1, 2) // layer 1 (waits on both)
	c.Add1(H, 0)     // free, rides at qubit 0 availability (1)
	c.Add2(CX, 0, 1) // layer 2
	layerOf, depth := Layers(c)
	wantLayer := []int{0, 0, 1, 1, 2}
	for i, want := range wantLayer {
		if layerOf[i] != want {
			t.Errorf("gate %d layer = %d, want %d", i, layerOf[i], want)
		}
	}
	if depth != 3 {
		t.Errorf("depth = %d, want 3", depth)
	}
}

// Property: interaction matrix is symmetric with zero diagonal, and total
// weight equals twice the CX count, for random circuits.
func TestInteractionMatrixProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		c := New("rand", n)
		for i := 0; i < 50; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				c.Add1(H, a)
				continue
			}
			c.Add2(CX, a, b)
		}
		m := NewInteractionMatrix(c)
		total := 0
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
				total += m.At(i, j)
			}
		}
		return total == 2*c.CXCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Layers depth is at least ceil(maxPerQubitCX) and QubitLists
// entries are strictly increasing.
func TestDerivedViewProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		c := New("rand", n)
		for i := 0; i < 80; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(CX, a, b)
			}
		}
		ql := NewQubitLists(c)
		maxPer := 0
		for q, lst := range ql.Lists {
			for i := 1; i < len(lst); i++ {
				if lst[i] <= lst[i-1] {
					return false
				}
			}
			cxq := 0
			for _, gi := range lst {
				if c.Gates[gi].TwoQubit() {
					cxq++
				}
			}
			if cxq > maxPer {
				maxPer = cxq
			}
			_ = q
		}
		_, depth := Layers(c)
		return depth >= maxPer
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
