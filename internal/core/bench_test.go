package core

// Benchmarks for the Alg. 2 routing loop. BenchmarkRouteCircuit drives
// the package-internal router with every piece of scratch state reused
// across iterations — the steady-state regime of batch compilation — and
// must report 0 allocs/op after the allocation-free rewrite.
// BenchmarkCompileQFT{64,256} measure the full compile pipeline
// (placement + routing + metrics); their alloc counts are tracked
// against the pre-rewrite baseline in BENCH_route.json at the repo
// root.

import (
	"fmt"
	"testing"

	"hilight/internal/bench"
	"hilight/internal/grid"
	"hilight/internal/place"
)

// BenchmarkRouteCircuit measures one full routing pass over QFT-64 with
// the default (HiLight) configuration and a fixed pre-computed placement.
func BenchmarkRouteCircuit(b *testing.B) {
	c := bench.QFT(64).DecomposeSWAPs()
	g := grid.Rect(64)
	var cfg config
	cfg.fillDefaults()
	// The default configuration has no adjuster, so the router never
	// mutates the layout and one placement serves every iteration.
	layout := place.HiLight{}.Place(c, g)
	var rt router
	// Warm up: the first pass sizes all per-grid, per-circuit, and result
	// scratch; the steady state after it must be allocation-free.
	if _, err := rt.route(c, g, layout, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.route(c, g, layout, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileQFT measures the full Map pipeline on QFT-64/QFT-256.
func BenchmarkCompileQFT(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("QFT%d", n), func(b *testing.B) {
			c := bench.QFT(n)
			g := grid.Rect(n)
			sp := MustMethod("hilight-map")
			if _, err := Run(c, g, sp, RunOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(c, g, sp, RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileQFTParallel measures the parallel route pass
// (hilight-map-parallel: speculative workers + windowed lookahead +
// component pruning) at fixed pool sizes, for the worker-scaling table
// in BENCH_route.json. The schedule is identical across arms.
func BenchmarkCompileQFTParallel(b *testing.B) {
	for _, n := range []int{64, 256} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("QFT%d/workers%d", n, workers), func(b *testing.B) {
				c := bench.QFT(n)
				g := grid.Rect(n)
				sp := MustMethod("hilight-map-parallel")
				sp.RouteWorkers = workers
				if _, err := Run(c, g, sp, RunOptions{}); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(c, g, sp, RunOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
