package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/route"
)

func TestCompactHoistsBubbles(t *testing.T) {
	// The two-bend L-shape finder defers gates whenever both bends are
	// blocked, leaving bubbles a stronger finder can re-pack: compaction
	// with A* must strictly reduce latency on a dense circuit.
	c := qftCircuit(25)
	g := grid.Rect(25)
	sp := MustMethod("hilight-map")
	sp.Finder = "l-shape"
	res, err := Run(c, g, sp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	compact := CompactSchedule(res.Schedule, res.Circuit, &route.AStar{})
	if err := compact.Validate(res.Circuit); err != nil {
		t.Fatalf("compacted schedule invalid: %v", err)
	}
	if compact.Latency() >= res.Schedule.Latency() {
		t.Errorf("compaction recovered nothing: %d -> %d", res.Schedule.Latency(), compact.Latency())
	}
}

func TestCompactPreservesAlreadyTight(t *testing.T) {
	// A serialized chain cannot compact below its dependency depth.
	c := circuit.New("chain", 5)
	for i := 0; i+1 < 5; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	g := grid.Rect(5)
	res, err := Run(c, g, MustMethod("hilight-map"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	compact := CompactSchedule(res.Schedule, res.Circuit, nil)
	if compact.Latency() != res.Schedule.Latency() {
		t.Errorf("chain latency changed: %d -> %d", res.Schedule.Latency(), compact.Latency())
	}
	if err := compact.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
}

func TestCompactSkipsSwapSchedules(t *testing.T) {
	c := qftCircuit(6)
	g := grid.Square(6)
	res, err := Run(c, g, MustMethod("hilight-map"), RunOptions{Adjuster: &swapHappyAdjuster{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.InsertedBraids() == 0 {
		t.Skip("adjuster did not fire")
	}
	compact := CompactSchedule(res.Schedule, res.Circuit, nil)
	if compact != res.Schedule {
		t.Error("swap-bearing schedule should be returned unchanged")
	}
}

// Property: compaction always yields a valid schedule with latency no
// greater than the input, across random circuits and orderings.
func TestCompactProperty(t *testing.T) {
	orderings := []string{"descending", "ascending", "proposed"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		c := circuit.New("rand", n)
		for i := 0; i < 5+rng.Intn(40); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				c.Add2(circuit.CX, a, b)
			}
		}
		g := grid.Rect(n)
		sp := MustMethod("hilight-map")
		sp.Ordering = orderings[rng.Intn(len(orderings))]
		sp.OrderingThreshold = 1 + rng.Intn(4)
		res, err := Run(c, g, sp, RunOptions{Rng: rng})
		if err != nil {
			return false
		}
		compact := CompactSchedule(res.Schedule, res.Circuit, &route.AStar{})
		if compact.Validate(res.Circuit) != nil {
			return false
		}
		return compact.Latency() <= res.Schedule.Latency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
