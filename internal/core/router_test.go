package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/grid"
)

func bvCircuit(n int) *circuit.Circuit {
	// Bernstein–Vazirani with an all-ones hidden string: n-1 CXs sharing
	// the ancilla target. No two can braid in the same cycle.
	c := circuit.New("bv", n)
	for q := 0; q < n-1; q++ {
		c.Add1(circuit.H, q)
	}
	c.Add1(circuit.X, n-1)
	c.Add1(circuit.H, n-1)
	for q := 0; q < n-1; q++ {
		c.Add2(circuit.CX, q, n-1)
	}
	return c
}

func isingStep(n int) *circuit.Circuit {
	// One Trotter step of the 1D Ising model: ZZ on even bonds then odd
	// bonds, each ZZ = CX·RZ·CX. Linear interaction graph.
	c := circuit.New("ising", n)
	for _, parity := range []int{0, 1} {
		for i := parity; i+1 < n; i += 2 {
			c.Add2(circuit.CX, i, i+1)
			c.AddRot(circuit.RZ, i+1, 0.1)
			c.Add2(circuit.CX, i, i+1)
		}
	}
	return c
}

func mustMap(t *testing.T, c *circuit.Circuit, g *grid.Grid, sp Spec) *Result {
	t.Helper()
	res, err := Run(c, g, sp, RunOptions{})
	if err != nil {
		t.Fatalf("Run(%s): %v", c.Name, err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("schedule invalid for %s: %v", c.Name, err)
	}
	return res
}

func TestMapBVSerializes(t *testing.T) {
	c := bvCircuit(10)
	g := grid.Rect(10)
	res := mustMap(t, c, g, MustMethod("hilight-map"))
	// All 9 CXs share the ancilla: latency must be exactly 9 (Table 1).
	if res.Latency != 9 {
		t.Errorf("BV-10 latency = %d, want 9", res.Latency)
	}
}

func TestMapIsingStepLatency(t *testing.T) {
	// One Trotter step on a linear layout: even bonds (2 CX layers) +
	// odd bonds (2 CX layers) = 4 cycles, independent of n (Table 1's
	// Ising rows).
	for _, n := range []int{8, 16, 30} {
		c := isingStep(n)
		g := grid.Rect(n)
		res := mustMap(t, c, g, MustMethod("hilight-map"))
		if res.Latency != 4 {
			t.Errorf("Ising step n=%d latency = %d, want 4", n, res.Latency)
		}
	}
}

func TestMapGHZChainWithPattern(t *testing.T) {
	n := 9
	c := circuit.New("ghz", n)
	c.Add1(circuit.H, 0)
	for i := 0; i < n-1; i++ {
		c.Add2(circuit.CX, i, i+1)
	}
	g := grid.Square(n)
	res := mustMap(t, c, g, MustMethod("hilight-map"))
	// The chain serializes (each CX depends on the previous through the
	// shared qubit): latency = n-1 regardless of placement.
	if res.Latency != n-1 {
		t.Errorf("GHZ latency = %d, want %d", res.Latency, n-1)
	}
	// Pattern layout puts consecutive qubits adjacent: every braid is a
	// shared-corner braid occupying exactly one routing vertex.
	if res.PathLen != n-1 {
		t.Errorf("GHZ total path length = %d, want %d on snake layout", res.PathLen, n-1)
	}
}

func TestMapParallelPairs(t *testing.T) {
	// Disjoint pairs (0,1) (2,3) (4,5) (6,7) all braid in one cycle when
	// placed sensibly.
	c := circuit.New("pairs", 8)
	for i := 0; i < 8; i += 2 {
		c.Add2(circuit.CX, i, i+1)
	}
	g := grid.Square(8)
	res := mustMap(t, c, g, MustMethod("hilight-map"))
	if res.Latency != 1 {
		t.Errorf("parallel pairs latency = %d, want 1", res.Latency)
	}
}

func TestMapAllConfigVariants(t *testing.T) {
	c := qftCircuit(8)
	g := grid.Rect(8)
	specs := map[string]Spec{
		"hilight-map":  MustMethod("hilight-map"),
		"hilight-pg":   MustMethod("hilight-pg"),
		"hilight-gm":   MustMethod("hilight-gm"),
		"baseline":     MustMethod("baseline"),
		"random-order": {Ordering: "random"},
		"llg-order":    {Ordering: "llg"},
		"asc":          {Ordering: "ascending"},
		"desc":         {Ordering: "descending"},
		"identity":     {Placement: "identity"},
		"full16":       {Finder: "full-16"},
		"stackdfs":     {Finder: "stack-dfs"},
	}
	for name, sp := range specs {
		res, err := Run(c, g, sp, RunOptions{Rng: rand.New(rand.NewSource(5))})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := res.Schedule.Validate(res.Circuit); err != nil {
			t.Errorf("%s: invalid schedule: %v", name, err)
		}
		if res.Latency <= 0 || res.ResUtil <= 0 {
			t.Errorf("%s: degenerate metrics %+v", name, res)
		}
	}
}

func qftCircuit(n int) *circuit.Circuit {
	c := circuit.New("qft", n)
	for i := 0; i < n; i++ {
		c.Add1(circuit.H, i)
		for j := i + 1; j < n; j++ {
			c.Add2(circuit.CX, j, i)
		}
	}
	return c
}

func TestMapEmptyAndOneGateCircuits(t *testing.T) {
	e := circuit.New("empty", 4)
	res := mustMap(t, e, grid.Square(4), MustMethod("hilight-map"))
	if res.Latency != 0 || res.ResUtil != 0 {
		t.Errorf("empty circuit latency=%d resutil=%g", res.Latency, res.ResUtil)
	}
	one := circuit.New("one", 2)
	one.Add2(circuit.CX, 0, 1)
	res = mustMap(t, one, grid.Square(2), MustMethod("hilight-map"))
	if res.Latency != 1 {
		t.Errorf("single gate latency = %d", res.Latency)
	}
}

func TestMapRejectsOversizedCircuit(t *testing.T) {
	c := circuit.New("big", 10)
	g := grid.New(2, 2)
	if _, err := Run(c, g, Spec{}, RunOptions{}); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestMapQCOPreservesSemanticsAndHelps(t *testing.T) {
	// The fan pattern from the QCO tests embedded in a mapping run.
	c := circuit.New("fan", 4)
	c.Add2(circuit.CX, 0, 1)
	c.Add2(circuit.CX, 0, 2)
	c.Add2(circuit.CX, 3, 2)
	g := grid.Square(4)
	plain := mustMap(t, c, g, MustMethod("hilight-map"))
	pg := mustMap(t, c, g, MustMethod("hilight-pg"))
	if pg.Latency > plain.Latency {
		t.Errorf("QCO increased latency: %d -> %d", plain.Latency, pg.Latency)
	}
}

func TestMapWithFactoryReservation(t *testing.T) {
	c := qftCircuit(6)
	g := grid.New(3, 3)
	g.ReserveTile(g.TileAt(2, 2))
	res := mustMap(t, c, g, MustMethod("hilight-map"))
	// No braid endpoint may live on the reserved tile.
	for _, layer := range res.Schedule.Layers {
		for _, b := range layer {
			if b.CtlTile == g.TileAt(2, 2) || b.TgtTile == g.TileAt(2, 2) {
				t.Fatal("braid endpoint on reserved tile")
			}
		}
	}
}

// swapHappyAdjuster proposes one adjacent swap on the first cycle to
// exercise the SWAP machinery end to end.
type swapHappyAdjuster struct {
	done bool
}

func (a *swapHappyAdjuster) Propose(st *RouterState) []TileSwap {
	if a.done {
		return nil
	}
	a.done = true
	// Swap the first two adjacent tiles that exist.
	t0 := 0
	for _, t := range st.Grid.CardinalNeighbors(t0) {
		return []TileSwap{{T1: t0, T2: t}}
	}
	return nil
}

func TestMapWithAdjusterSwaps(t *testing.T) {
	c := qftCircuit(6)
	g := grid.Square(6)
	res, err := Run(c, g, MustMethod("hilight-map"), RunOptions{Adjuster: &swapHappyAdjuster{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("schedule with swaps invalid: %v", err)
	}
	if res.Schedule.InsertedBraids() != 3 {
		t.Errorf("inserted braids = %d, want 3", res.Schedule.InsertedBraids())
	}
}

type badAdjuster struct{}

func (badAdjuster) Propose(st *RouterState) []TileSwap {
	return []TileSwap{{T1: 0, T2: st.Grid.Tiles() - 1}}
}

func TestMapRejectsNonAdjacentSwap(t *testing.T) {
	c := qftCircuit(6)
	if _, err := Run(c, grid.Square(6), MustMethod("hilight-map"), RunOptions{Adjuster: badAdjuster{}}); err == nil {
		t.Error("non-adjacent swap accepted")
	}
}

// Property: random circuits map to valid schedules under every preset,
// and latency is bounded below by the per-qubit serialization and above
// by total CX count (plus swap stalls, absent here).
func TestMapScheduleProperty(t *testing.T) {
	presets := []Spec{MustMethod("hilight-map"), MustMethod("hilight-pg"), MustMethod("hilight-gm")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		c := circuit.New("rand", n)
		ng := 1 + rng.Intn(40)
		for i := 0; i < ng; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				c.Add1(circuit.H, a)
				continue
			}
			c.Add2(circuit.CX, a, b)
		}
		g := grid.Rect(n)
		for _, preset := range presets {
			res, err := Run(c, g, preset, RunOptions{Rng: rng})
			if err != nil {
				return false
			}
			if res.Schedule.Validate(res.Circuit) != nil {
				return false
			}
			cx := res.Circuit.CXCount()
			if res.Latency > cx {
				return false
			}
			_, depth := circuit.Layers(res.Circuit)
			if res.Latency < depth && cx > 0 {
				// Latency can never beat the dependency depth.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
