package core

import (
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel wrapped into every cancellation failure:
// errors.Is(err, ErrCanceled) holds whether the context was canceled
// before Compile started or a deadline fired mid-routing.
var ErrCanceled = errors.New("compile canceled")

// ErrWarmStart is the sentinel wrapped into every warm-start replay
// failure: the previous schedule's prefix no longer replays verbatim on
// the new circuit or grid (a braid's gate diverged, a path crosses a new
// defect, the layout drifted). Callers detect it with errors.Is and fall
// back to a cold compile — a warm-start failure is never fatal.
var ErrWarmStart = errors.New("warm-start prefix replay failed")

// ErrUnroutable reports that the router proved a gate cannot be braided:
// a full sweep on an otherwise-empty lattice placed nothing, so waiting
// more cycles cannot help (defects, reserved regions, or a partitioned
// lattice separate the operand tiles). Gate is the circuit gate index, or
// -1 when no single gate could be blamed. Retrieve with errors.As.
type ErrUnroutable struct {
	Gate             int
	CtlTile, TgtTile int
	Reason           string
}

// Error implements error.
func (e *ErrUnroutable) Error() string {
	if e.Gate >= 0 {
		return fmt.Sprintf("core: gate %d (tiles %d-%d) unroutable: %s", e.Gate, e.CtlTile, e.TgtTile, e.Reason)
	}
	return "core: unroutable: " + e.Reason
}

// ErrInsufficientCapacity reports that the grid has fewer usable tiles
// than the circuit has program qubits, so no placement exists. Retrieve
// with errors.As.
type ErrInsufficientCapacity struct {
	Need int // program qubits
	Have int // usable tiles
	Grid string
}

// Error implements error.
func (e *ErrInsufficientCapacity) Error() string {
	return fmt.Sprintf("core: %s has %d usable tiles for %d program qubits", e.Grid, e.Have, e.Need)
}
