package core

import (
	"hilight/internal/circuit"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// CompactSchedule is a post-routing optimization pass (the "further
// optimization opportunities" direction of §6): it sweeps the schedule
// front to back and hoists braids into earlier cycles whenever (a) the
// gate's per-qubit predecessors have already executed in a strictly
// earlier cycle, (b) neither qubit braids in the target cycle, and (c) a
// conflict-free path exists under the target cycle's occupancy. Layers
// emptied by hoisting are dropped, so latency never increases. Schedules
// containing inserted SWAP braids are returned unchanged — hoisting
// across layout changes would need full replay machinery for marginal
// gain on a baseline-only feature.
//
// Schedules produced by this package's own router with the A* finder are
// already locally tight (a deferred gate failed against a subset of the
// final occupancy, so it fails against the whole of it) — compaction is
// a no-op there by construction. It earns its keep on schedules from
// weaker finders (the two-bend L-shape router leaves ~15–20 % recoverable
// latency on dense circuits) and on externally produced or JSON-imported
// schedules.
//
// The result is a new schedule; the input is not modified.
func CompactSchedule(s *sched.Schedule, c *circuit.Circuit, finder route.Finder) *sched.Schedule {
	if s.InsertedBraids() > 0 {
		return s
	}
	if finder == nil {
		finder = &route.AStar{}
	}
	// Rebuild per-qubit program order to know each gate's predecessor.
	perQubit := make([][]int, c.NumQubits)
	for gi, g := range c.Gates {
		if g.TwoQubit() {
			perQubit[g.Q0] = append(perQubit[g.Q0], gi)
			perQubit[g.Q1] = append(perQubit[g.Q1], gi)
		}
	}
	pred := map[int][2]int{} // gate -> predecessor gate per operand (-1 none)
	for gi, g := range c.Gates {
		if !g.TwoQubit() {
			continue
		}
		p := [2]int{-1, -1}
		for k, q := range [2]int{g.Q0, g.Q1} {
			lst := perQubit[q]
			for i, x := range lst {
				if x == gi && i > 0 {
					p[k] = lst[i-1]
				}
			}
		}
		pred[gi] = p
	}

	// Working copy: layers as slices of braids, plus per-layer occupancy
	// and per-qubit usage, all rebuilt as we hoist.
	layers := make([]sched.Layer, len(s.Layers))
	for i, l := range s.Layers {
		layers[i] = append(sched.Layer(nil), l...)
	}
	occs := make([]*route.Occupancy, len(layers))
	qubitBusy := make([]map[int]bool, len(layers))
	layerOf := map[int]int{}
	for i, l := range layers {
		occs[i] = route.NewOccupancy(s.Grid)
		qubitBusy[i] = map[int]bool{}
		for _, b := range l {
			occs[i].Add(s.Grid, b.Path)
			g := c.Gates[b.Gate]
			qubitBusy[i][g.Q0] = true
			qubitBusy[i][g.Q1] = true
			layerOf[b.Gate] = i
		}
	}

	for li := 1; li < len(layers); li++ {
		kept := layers[li][:0]
		for _, b := range layers[li] {
			target := hoistTarget(b, pred, layerOf, li)
			moved := false
			for t := target; t < li; t++ {
				g := c.Gates[b.Gate]
				if qubitBusy[t][g.Q0] || qubitBusy[t][g.Q1] {
					continue
				}
				// nil buf: the hoisted path is retained in the layer, so it
				// must own its storage.
				p, ok := finder.Find(s.Grid, occs[t], b.CtlTile, b.TgtTile, nil)
				if !ok {
					continue
				}
				nb := b
				nb.Path = p
				layers[t] = append(layers[t], nb)
				occs[t].Add(s.Grid, p)
				qubitBusy[t][g.Q0] = true
				qubitBusy[t][g.Q1] = true
				layerOf[b.Gate] = t
				moved = true
				break
			}
			if !moved {
				kept = append(kept, b)
				continue
			}
			// Remove the braid's footprint from its old layer lazily: the
			// occupancy of layer li is only used for braids hoisted *into*
			// it from later layers, and freeing space there is an extra
			// opportunity, not a correctness issue. Rebuild it.
			// (Handled below by reconstructing occupancy for li.)
		}
		layers[li] = kept
		occs[li] = route.NewOccupancy(s.Grid)
		qubitBusy[li] = map[int]bool{}
		for _, b := range kept {
			occs[li].Add(s.Grid, b.Path)
			g := c.Gates[b.Gate]
			qubitBusy[li][g.Q0] = true
			qubitBusy[li][g.Q1] = true
		}
	}

	out := &sched.Schedule{Grid: s.Grid, Initial: s.Initial.Clone()}
	for _, l := range layers {
		if len(l) > 0 {
			out.Layers = append(out.Layers, l)
		}
	}
	// Dropping empty layers renumbers cycles; per-qubit order is
	// preserved because relative layer order never changes.
	return out
}

// hoistTarget returns the earliest layer gate b may legally move to:
// one past the latest layer among its per-qubit predecessors.
func hoistTarget(b sched.Braid, pred map[int][2]int, layerOf map[int]int, cur int) int {
	earliest := 0
	for _, p := range pred[b.Gate] {
		if p < 0 {
			continue
		}
		if l, ok := layerOf[p]; ok && l+1 > earliest {
			earliest = l + 1
		}
	}
	if earliest > cur {
		return cur
	}
	return earliest
}
