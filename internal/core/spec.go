package core

import (
	"fmt"
	"math/rand"
	"sort"

	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
)

// Spec is a declarative description of a compile method: every component
// is named, and the names are resolved against the package registries
// when a Pipeline is built. Zero-value fields select the HiLight
// defaults, so Spec{} is exactly the paper's "hilight-map" stack.
//
// Specs are plain values: experiment harnesses copy a registered method
// spec and override one field to build an ablation arm, with no seeded
// state captured until the pipeline materializes the components.
type Spec struct {
	// Method is the registry name this spec was registered under; it is
	// set by RegisterMethod and carried into Result.Method.
	Method string
	// Placement names an initial-placement factory ("" = "hilight").
	Placement string
	// Ordering names a gate-ordering factory ("" = "proposed").
	Ordering string
	// Finder names a path-finder factory ("" = "astar-closest").
	Finder string
	// Adjuster names an in-routing layout adjuster ("" = none).
	Adjuster string
	// QCO enables the program-level optimization pass (§3.3).
	QCO bool
	// OrderingThreshold invokes Ordering only when the ready set is
	// strictly larger; ≤0 means DefaultOrderingThreshold.
	OrderingThreshold int
	// RouteWorkers selects the parallel route pass: 0 keeps the
	// sequential Alg. 2 loop, n ≥ 1 speculatively routes each dependency
	// layer over n workers, negative means GOMAXPROCS. Output schedules
	// are byte-identical for every n ≥ 1, so the worker count is an
	// execution knob, not part of a method's semantic identity.
	RouteWorkers int
	// Lookahead is the windowed-lookahead depth used by the parallel
	// route pass to break equal-cost path ties with congestion from the
	// next k pending two-qubit gates per qubit. ≤ 0 disables it. Like
	// RouteWorkers it never changes which gates route, only which of the
	// equally short paths is preferred.
	Lookahead int
}

// Component registries. Factories take the pipeline's seeded rng so
// randomized components (pattern-matched layouts, random ordering) draw
// from the same stream regardless of which method references them.
var (
	placementReg = map[string]func(*rand.Rand) place.Method{}
	orderingReg  = map[string]func(*rand.Rand) order.Strategy{}
	finderReg    = map[string]func() route.Finder{}
	adjusterReg  = map[string]func() LayoutAdjuster{}
	methodReg    = map[string]Spec{}
)

func register[T any](reg map[string]T, kind, name string, v T) {
	if name == "" {
		panic("core: empty " + kind + " name")
	}
	if _, dup := reg[name]; dup {
		panic(fmt.Sprintf("core: duplicate %s %q", kind, name))
	}
	reg[name] = v
}

// RegisterPlacement adds a named initial-placement factory. Duplicate
// names panic: registration happens in package init, where a collision
// is a programming error.
func RegisterPlacement(name string, mk func(*rand.Rand) place.Method) {
	register(placementReg, "placement", name, mk)
}

// RegisterOrdering adds a named gate-ordering factory.
func RegisterOrdering(name string, mk func(*rand.Rand) order.Strategy) {
	register(orderingReg, "ordering", name, mk)
}

// RegisterFinder adds a named path-finder factory.
func RegisterFinder(name string, mk func() route.Finder) {
	register(finderReg, "finder", name, mk)
}

// RegisterAdjuster adds a named layout-adjuster factory.
func RegisterAdjuster(name string, mk func() LayoutAdjuster) {
	register(adjusterReg, "adjuster", name, mk)
}

// RegisterMethod adds a named method spec to the static registry. The
// spec's Method field is overwritten with the registered name.
func RegisterMethod(name string, sp Spec) {
	sp.Method = name
	register(methodReg, "method", name, sp)
}

// LookupMethod returns the registered spec for name.
func LookupMethod(name string) (Spec, bool) {
	sp, ok := methodReg[name]
	return sp, ok
}

// MustMethod returns the registered spec for name, panicking when the
// name is unknown — for tests and harness tables of known-good names.
func MustMethod(name string) Spec {
	sp, ok := methodReg[name]
	if !ok {
		panic(fmt.Sprintf("core: unknown method %q", name))
	}
	return sp
}

// MethodNames lists the registered method names, sorted. Enumeration
// reads the static registry only: no component (and no seeded rng) is
// instantiated.
func MethodNames() []string {
	names := make([]string, 0, len(methodReg))
	for name := range methodReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// components resolves the spec's names into component instances. rng
// must be non-nil; it is shared by every randomized component exactly
// like the pre-pipeline Config constructors shared one seeded stream.
func (sp Spec) components(rng *rand.Rand) (config, error) {
	var cfg config
	pname := sp.Placement
	if pname == "" {
		pname = "hilight"
	}
	mkPlace, ok := placementReg[pname]
	if !ok {
		return cfg, fmt.Errorf("core: unknown placement %q", pname)
	}
	oname := sp.Ordering
	if oname == "" {
		oname = "proposed"
	}
	mkOrder, ok := orderingReg[oname]
	if !ok {
		return cfg, fmt.Errorf("core: unknown ordering %q", oname)
	}
	fname := sp.Finder
	if fname == "" {
		fname = "astar-closest"
	}
	mkFinder, ok := finderReg[fname]
	if !ok {
		return cfg, fmt.Errorf("core: unknown finder %q", fname)
	}
	cfg.Placement = mkPlace(rng)
	cfg.Ordering = mkOrder(rng)
	cfg.Finder = mkFinder()
	cfg.FinderName = fname
	cfg.RouteWorkers = sp.RouteWorkers
	cfg.Lookahead = sp.Lookahead
	if sp.Adjuster != "" {
		mkAdj, ok := adjusterReg[sp.Adjuster]
		if !ok {
			return cfg, fmt.Errorf("core: unknown adjuster %q", sp.Adjuster)
		}
		cfg.Adjuster = mkAdj()
	}
	cfg.QCO = sp.QCO
	cfg.OrderingThreshold = sp.OrderingThreshold
	cfg.fillDefaults()
	return cfg, nil
}

// Built-in components. The registry keys are the components' own Name()
// strings, so a finder resolved from a schedule or an ablation table row
// round-trips through the registry.
func init() {
	RegisterPlacement("identity", func(*rand.Rand) place.Method { return place.Identity{} })
	RegisterPlacement("random", func(rng *rand.Rand) place.Method { return place.Random{Rng: rng} })
	RegisterPlacement("proximity", func(*rand.Rand) place.Method { return place.Proximity{} })
	RegisterPlacement("gm", func(rng *rand.Rand) place.Method { return place.GM{Rng: rng} })
	RegisterPlacement("gmwp", func(rng *rand.Rand) place.Method { return place.GMWP{Rng: rng} })
	RegisterPlacement("hilight", func(rng *rand.Rand) place.Method { return place.HiLight{Rng: rng} })
	RegisterPlacement("hilight+refine", func(rng *rand.Rand) place.Method {
		return place.Refined{Base: place.HiLight{Rng: rng}}
	})

	RegisterOrdering("proposed", func(*rand.Rand) order.Strategy { return order.Proposed{} })
	RegisterOrdering("ascending", func(*rand.Rand) order.Strategy { return order.Ascending{} })
	RegisterOrdering("descending", func(*rand.Rand) order.Strategy { return order.Descending{} })
	RegisterOrdering("random", func(rng *rand.Rand) order.Strategy { return order.Random{Rng: rng} })
	RegisterOrdering("llg", func(*rand.Rand) order.Strategy { return order.LLG{} })
	RegisterOrdering("critical-path", func(*rand.Rand) order.Strategy { return order.CriticalPath{} })

	RegisterFinder("astar-closest", func() route.Finder { return &route.AStar{} })
	RegisterFinder("full-16", func() route.Finder { return &route.Full16{} })
	RegisterFinder("stack-dfs", func() route.Finder { return &route.StackDFS{} })
	RegisterFinder("l-shape", func() route.Finder { return route.LShape{} })
	RegisterFinder("windowed", func() route.Finder { return &route.Windowed{} })
}
