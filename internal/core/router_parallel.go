package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/order"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// This file holds the route-parallel pass engine: Alg. 2 with the
// independent braids of each dependency layer routed speculatively in
// parallel and committed in a deterministic order.
//
// Each cycle runs three phases:
//
//   - Speculation: a worker pool path-finds every ready gate against the
//     cycle's empty-lattice snapshot (the occupancy is simply not mutated
//     while workers run) through per-worker Windowed finders sharing one
//     free-component labeling and one windowed-lookahead congestion
//     field. On an empty lattice the corridor fast path answers almost
//     every query, so speculation is cheap even single-threaded.
//   - Commit: the single-threaded walk of the *ordered ready sequence* —
//     never worker completion order — commits each speculative path that
//     is disjoint from those committed before it. Conflicting candidates
//     fall through; candidates whose speculation found no path are
//     deferred to the next cycle (occupancy only grows within a cycle,
//     so failure against the cycle-start snapshot is monotone).
//   - Finish: conflicting candidates re-route one by one against the
//     live occupancy, exactly like the sequential router but with the
//     component labeling refreshed after every commit — so a gate that
//     cannot route under this cycle's braids is deferred by two label
//     loads instead of a full-lattice search flood, and each gate costs
//     at most two path-finds per cycle.
//
// Determinism: the speculation snapshot is a pure function of the
// committed schedule prefix, the commit and finish orders are the
// ordered ready sequence, and each Find is a deterministic function of
// (snapshot, congestion field, gate) regardless of which worker computes
// it — so the schedule is byte-for-byte identical for every worker count
// and GOMAXPROCS setting. Starvation-freedom: the first candidate in
// commit order always commits (nothing precedes it to conflict with),
// and the finish phase is a linear sequential sweep.
//
// The pass does not support layout adjusters (inserted SWAPs serialize
// the cycle anyway); NewPipeline falls back to the sequential route pass
// for specs that configure one or that use a non-A*-family finder.

// parStats aggregates the parallel router's contention counters,
// surfaced as route-parallel trace counters and route/parallel/...
// metrics.
type parStats struct {
	// Conflicts counts speculative paths that lost the commit race to an
	// earlier gate in the deterministic order.
	Conflicts int64
	// Retries counts finish-phase re-routes: sequential path-finds for
	// candidates whose speculation conflicted.
	Retries int64
	// StallCycles counts cycles that needed a finish phase.
	StallCycles int64
}

// parallelCompatible reports whether the resolved components allow the
// parallel route pass to substitute its windowed finder without changing
// which gates are routable: no layout adjuster (inserted SWAPs serialize
// the cycle), and a finder from the complete A*-closest family (the
// windowed finder accepts and rejects exactly like it). Incompatible
// specs silently keep the sequential pass, so a process-wide worker
// default is always safe to set.
func parallelCompatible(cfg config) bool {
	if cfg.Adjuster != nil {
		return false
	}
	switch cfg.FinderName {
	case "", "astar-closest", "windowed":
		return true
	}
	return false
}

// resolveRouteWorkers maps a configured worker count to a pool size:
// negative means GOMAXPROCS, and the result is at least 1.
func resolveRouteWorkers(n int) int {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelRouter embeds the sequential router's scratch (occupancy,
// cursors, ready set, layer buffers, arena) and adds the speculation
// state. Like router, a parallelRouter is one-shot per route call and
// owns the returned schedule.
type parallelRouter struct {
	router

	workers int
	finders []*route.Windowed
	comp    route.Components
	// emptyComp caches the empty-lattice labeling (a function of the
	// defect map alone), restored by copy at every cycle start instead of
	// re-sweeping.
	emptyComp route.Components

	// Per-cycle congestion field (windowed lookahead), its 2D
	// difference-array scratch, and the cached per-qubit tile coordinates
	// (the layout never moves without an adjuster).
	cong     []int32
	congDiff []int32
	qtx      []int32
	qty      []int32
	// Per-qubit positions of two-qubit gates within ql.Lists[q] (arena +
	// offsets), with a monotone pointer per qubit — so the per-cycle
	// lookahead window is found without re-skipping single-qubit gates.
	// q2rect parallels q2arena with each entry's stamp rectangle packed
	// into one int64 (-1 when the gate stamps from its other operand), so
	// the per-cycle sweep never loads gate records at all.
	q2arena []int32
	q2rect  []int64
	q2off   []int32
	q2ptr   []int32

	// Per-round speculation state. readyOrd is the cycle's ordered ready
	// slice; cands/retry hold indices into it; specOK/specPath receive
	// each candidate's speculation result (workers write disjoint
	// entries).
	readyOrd []order.Ready
	cands    []int
	retry    []int
	specOK   []bool
	specPath []route.Path

	next   atomic.Int64
	wg     sync.WaitGroup
	workCh chan struct{}

	stats parStats
}

// route runs the parallel Alg. 2 main loop. The returned schedule is
// owned by the router and valid until the next route call.
func (pr *parallelRouter) route(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout, cfg config) (*sched.Schedule, error) {
	pr.init(c, g, layout, cfg)
	if cfg.Sink != nil {
		if err := cfg.Sink.OnStart(g, pr.sch.Initial); err != nil {
			return nil, fmt.Errorf("core: schedule sink: %w", err)
		}
	}
	pr.workers = resolveRouteWorkers(cfg.RouteWorkers)

	pr.finders = pr.finders[:0]
	for i := 0; i < pr.workers; i++ {
		pr.finders = append(pr.finders, &route.Windowed{Comp: &pr.comp})
	}
	if pr.workers > 1 {
		pr.workCh = make(chan struct{})
		defer close(pr.workCh)
		for w := 1; w < pr.workers; w++ {
			go pr.workerLoop(w)
		}
	}

	remaining := c.CXCount()
	for q := 0; q < c.NumQubits; q++ {
		pr.skip1Q(q)
	}

	// The empty-lattice labeling depends only on the defect map: compute
	// it once against the reset occupancy and restore it by copy each
	// cycle. Without an adjuster the layout is immutable, so per-qubit
	// tile coordinates for the congestion field are also cached here.
	pr.occ.Reset()
	pr.emptyComp.Compute(g, pr.occ)
	if cfg.Lookahead > 0 {
		pr.qtx = resizeZeroed32(pr.qtx, c.NumQubits)
		pr.qty = resizeZeroed32(pr.qty, c.NumQubits)
		for q := 0; q < c.NumQubits; q++ {
			x, y := g.TileXY(layout.QubitTile[q])
			pr.qtx[q], pr.qty[q] = int32(x), int32(y)
		}
		// Index each qubit's two-qubit gates once; the congestion sweep
		// then jumps straight to the pending window every cycle. The stamp
		// rectangle (operand tiles' corner-vertex bounding box, normalized
		// and widened to the far corner column/row) is resolved here too —
		// the layout never moves without an adjuster.
		pr.q2arena = pr.q2arena[:0]
		pr.q2rect = pr.q2rect[:0]
		pr.q2off = resizeZeroed32(pr.q2off, c.NumQubits+1)
		pr.q2ptr = resizeZeroed32(pr.q2ptr, c.NumQubits)
		for q := 0; q < c.NumQubits; q++ {
			pr.q2off[q] = int32(len(pr.q2arena))
			for i, gi := range pr.ql.Lists[q] {
				gate := pr.c.Gates[gi]
				if !gate.TwoQubit() {
					continue
				}
				pr.q2arena = append(pr.q2arena, int32(i))
				rect := int64(-1)
				if gate.Q0 == q { // count each gate once, from its control side
					x0, y0 := pr.qtx[gate.Q0], pr.qty[gate.Q0]
					x1, y1 := pr.qtx[gate.Q1], pr.qty[gate.Q1]
					if x1 < x0 {
						x0, x1 = x1, x0
					}
					if y1 < y0 {
						y0, y1 = y1, y0
					}
					x1++ // tile corners span one extra vertex column/row
					y1++
					rect = int64(x0) | int64(y0)<<16 | int64(x1)<<32 | int64(y1)<<48
				}
				pr.q2rect = append(pr.q2rect, rect)
			}
		}
		pr.q2off[c.NumQubits] = int32(len(pr.q2arena))
	}

	cycle := 0
	guard := 0
	maxCycles := 16*(remaining+len(c.Gates)) + 4*g.Tiles() + 64

	// compDirty tracks whether pr.comp's labeling has drifted from the
	// occupancy it will next be read against (any Add since the last
	// Compute, or the cycle-boundary Reset after one).
	compDirty := true

	for remaining > 0 {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, fmt.Errorf("%w at cycle %d", err, cycle)
		}
		if guard++; guard > maxCycles {
			return nil, &ErrUnroutable{Gate: -1, Reason: fmt.Sprintf(
				"router exceeded %d cycles with %d gates left — scheduling livelock", maxCycles, remaining)}
		}
		pr.occ.Reset()
		pr.busyEpoch++
		pr.layerBuf = pr.layerBuf[:0]

		ready := pr.collectReady()
		if len(ready) > cfg.OrderingThreshold {
			ready = cfg.Ordering.Order(ready, g)
			pr.ready = ready[:0] // adopt whatever backing Order returned
		}
		pr.readyOrd = ready

		var cong []int32
		if cfg.Lookahead > 0 {
			pr.computeCongestion()
			cong = pr.cong
		}
		for _, f := range pr.finders {
			f.Cong = cong
		}

		pr.cands = pr.cands[:0]
		for i := range ready {
			pr.cands = append(pr.cands, i)
		}
		pr.specOK = resizeBools(pr.specOK, len(ready))
		pr.specPath = resizePaths(pr.specPath, len(ready))

		// Speculation round: every ready gate path-finds in parallel
		// against the cycle's empty-lattice snapshot, whose component
		// labeling only changes when the defect map does — restore the
		// cached labeling when the finish phase dirtied it.
		if compDirty {
			pr.comp.CopyFrom(&pr.emptyComp)
			compDirty = false
		}
		pr.speculate()

		// Commit phase: walk the ordered ready sequence, committing every
		// speculative path that is disjoint from the braids committed
		// before it. Conflicting candidates fall through to the finish
		// phase; candidates whose speculation failed are deferred to the
		// next cycle (occupancy only grows within a cycle, so failure
		// against the cycle-start snapshot is final).
		pr.retry = pr.retry[:0]
		for _, ci := range pr.cands {
			rd := ready[ci]
			if !pr.specOK[ci] || pr.isBusy(rd.CtlTile) || pr.isBusy(rd.TgtTile) {
				continue // deferred to the next cycle
			}
			if pr.occ.Conflicts(g, pr.specPath[ci]) {
				pr.retry = append(pr.retry, ci)
				pr.stats.Conflicts++
				continue // speculation lost the commit race; finish phase
			}
			remaining -= pr.commit(ci)
			compDirty = true
		}

		// Finish phase: the conflicting candidates re-route sequentially
		// against the live occupancy — each gate is path-found at most
		// twice per cycle, and the component labeling is refreshed after
		// every commit so a deferral costs two label loads, never a
		// full-lattice search flood (on a congested lattice nearly every
		// deferral would otherwise flood; labeling is the cheaper side of
		// that trade by an order of magnitude).
		if len(pr.retry) > 0 {
			pr.stats.StallCycles++
			f := pr.finders[0]
			for _, ci := range pr.retry {
				rd := ready[ci]
				if pr.isBusy(rd.CtlTile) || pr.isBusy(rd.TgtTile) {
					continue
				}
				if compDirty {
					pr.comp.Compute(g, pr.occ)
					compDirty = false
				}
				pr.stats.Retries++
				p, ok := f.Find(g, pr.occ, rd.CtlTile, rd.TgtTile, pr.specPath[ci][:0])
				if !ok {
					continue // disconnected under this cycle's braids; next cycle
				}
				pr.specPath[ci] = p
				remaining -= pr.commit(ci)
				compDirty = true
			}
		}

		if len(pr.layerBuf) > 0 {
			// The labels may have last been computed against this cycle's
			// live occupancy; the coming Reset invalidates that.
			compDirty = true
			if cfg.Observer != nil {
				stats := CycleStats{Cycle: cycle, Ready: len(ready), Executed: len(pr.layerBuf)}
				for _, b := range pr.layerBuf {
					stats.PathLength += len(b.Path)
				}
				stats.Deferred = stats.Ready - stats.Executed
				cfg.Observer.OnCycle(stats)
			}
			pr.flushLayer()
			if cfg.Sink != nil {
				if err := cfg.Sink.OnLayer(cycle, pr.sch.Layers[len(pr.sch.Layers)-1]); err != nil {
					return nil, fmt.Errorf("core: schedule sink: %w", err)
				}
			}
			cycle++
			continue
		}

		// Stuck-progress detection, mirroring the sequential router: the
		// cycle started from an empty lattice and still placed nothing.
		if len(ready) > 0 {
			rd := ready[0]
			return nil, &ErrUnroutable{
				Gate: rd.Gate, CtlTile: rd.CtlTile, TgtTile: rd.TgtTile,
				Reason: fmt.Sprintf("no braiding path on an empty lattice (%d gates remaining); defects or reserved regions disconnect the tiles", remaining),
			}
		}
		return nil, &ErrUnroutable{Gate: -1, Reason: fmt.Sprintf(
			"%d gates remaining but none ready — dependency deadlock", remaining)}
	}
	return pr.sch, nil
}

// commit places candidate ci's speculated (or finish-phase) path into
// the cycle's layer: occupancy, busy tiles, cursors, and the schedule
// arena. It returns the number of gates executed (always 1) so call
// sites read as remaining -= commit(ci).
func (pr *parallelRouter) commit(ci int) int {
	rd := pr.readyOrd[ci]
	p := pr.specPath[ci]
	pr.occ.Add(pr.g, p)
	pr.layerBuf = append(pr.layerBuf, sched.Braid{
		Gate: rd.Gate, CtlTile: rd.CtlTile, TgtTile: rd.TgtTile, Path: pr.storePath(p),
	})
	pr.markBusy(rd.CtlTile, rd.TgtTile)
	gate := pr.c.Gates[rd.Gate]
	pr.cursor[gate.Q0]++
	pr.cursor[gate.Q1]++
	pr.skip1Q(gate.Q0)
	pr.skip1Q(gate.Q1)
	return 1
}

// speculate path-finds every current candidate against the round
// snapshot, spreading the work over the pool. Worker 0 is the calling
// goroutine; helpers beyond the candidate count stay parked.
func (pr *parallelRouter) speculate() {
	pr.next.Store(0)
	helpers := pr.workers - 1
	if n := len(pr.cands) - 1; helpers > n {
		helpers = n
	}
	if helpers <= 0 {
		pr.speculateWorker(0)
		return
	}
	pr.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		pr.workCh <- struct{}{}
	}
	pr.speculateWorker(0)
	pr.wg.Wait()
}

// workerLoop parks a helper goroutine between rounds; each channel
// receive corresponds to one round's Add(1).
func (pr *parallelRouter) workerLoop(w int) {
	for range pr.workCh {
		pr.speculateWorker(w)
		pr.wg.Done()
	}
}

// speculateWorker claims candidates off the shared cursor and routes
// them with this worker's finder. All shared state (occupancy, busy
// tiles, components, congestion) is read-only during a round; results
// land in per-candidate slots, so workers never contend on data.
func (pr *parallelRouter) speculateWorker(w int) {
	f := pr.finders[w]
	g := pr.g
	for {
		i := int(pr.next.Add(1)) - 1
		if i >= len(pr.cands) {
			return
		}
		ci := pr.cands[i]
		rd := pr.readyOrd[ci]
		if pr.isBusy(rd.CtlTile) || pr.isBusy(rd.TgtTile) {
			pr.specOK[ci] = false
			continue
		}
		p, ok := f.Find(g, pr.occ, rd.CtlTile, rd.TgtTile, pr.specPath[ci][:0])
		pr.specOK[ci] = ok
		if ok {
			pr.specPath[ci] = p
		}
	}
}

// computeCongestion builds the cycle's windowed-lookahead field: for
// each qubit, the next cfg.Lookahead pending two-qubit gates beyond the
// imminent one each stamp the bounding box of their operand tiles'
// corner vertices, accumulated with a 2D difference array and one
// prefix-sum sweep. The result is a per-vertex count of how many
// upcoming braids want to cross that vertex's neighborhood — the
// tie-break field the Windowed finders consume.
func (pr *parallelRouter) computeCongestion() {
	g := pr.g
	c := pr.c
	vw, vh := g.VW(), g.VH()
	w := vw + 1 // difference-array stride: one sink column past the vertices
	pr.congDiff = resizeZeroed32(pr.congDiff, w*(vh+1))
	k := pr.cfg.Lookahead
	for q := 0; q < c.NumQubits; q++ {
		off := int(pr.q2off[q])
		pos := pr.q2arena[off:pr.q2off[q+1]]
		rects := pr.q2rect[off:pr.q2off[q+1]]
		p := int(pr.q2ptr[q])
		for p < len(pos) && int(pos[p]) < pr.cursor[q] {
			p++ // cursors only advance, so this pointer is monotone too
		}
		pr.q2ptr[q] = int32(p)
		// Window: the imminent gate at pos[p] routes this wavefront and is
		// not "pending"; the k gates after it stamp the field.
		end := p + k
		if end > len(pos)-1 {
			end = len(pos) - 1
		}
		for j := p + 1; j <= end; j++ {
			r := rects[j]
			if r < 0 {
				continue // counted from the gate's control side instead
			}
			x0, y0 := int(r&0xffff), int(r>>16&0xffff)
			x1, y1 := int(r>>32&0xffff), int(r>>48)
			pr.congDiff[y0*w+x0]++
			pr.congDiff[y0*w+x1+1]--
			pr.congDiff[(y1+1)*w+x0]--
			pr.congDiff[(y1+1)*w+x1+1]++
		}
	}
	pr.cong = resizeZeroed32(pr.cong, vw*vh)
	for y := 0; y < vh; y++ {
		row := pr.congDiff[y*w:]
		var acc int32
		for x := 0; x < vw; x++ {
			acc += row[x]
			v := acc
			if y > 0 {
				v += pr.congDiff[(y-1)*w+x]
			}
			row[x] = v
			pr.cong[y*vw+x] = v
		}
	}
}

// resizeZeroed32 returns s with length n and every element zero.
func resizeZeroed32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeBools returns s with length n, reusing capacity.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// resizePaths returns s with length n, preserving the per-slot buffer
// capacities accumulated by earlier cycles.
func resizePaths(s []route.Path, n int) []route.Path {
	if cap(s) < n {
		ns := make([]route.Path, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}
