// Package core implements the HiLight mapping pipeline: the fast-routing
// main loop of Alg. 2 with pluggable initial placement, gate ordering and
// braiding path-finding, plus the configuration presets for every variant
// the paper evaluates (hilight-map/-pg/-hw/-full, hilight-gm, the Fig. 9
// baseline, and the hooks the AutoBraid baseline plugs its SWAP-inserting
// layout adjustment into).
package core

import (
	"fmt"
	"time"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// DefaultOrderingThreshold is the ready-set size above which the ordering
// strategy is invoked; below it the discovery order is used directly. The
// paper adopts 4 from AutoBraid's analysis.
const DefaultOrderingThreshold = 4

// TileSwap asks the router to exchange the occupants of two adjacent
// tiles via an inserted three-braid SWAP.
type TileSwap struct {
	T1, T2 int
}

// RouterState is the read-only view a LayoutAdjuster gets each cycle.
type RouterState struct {
	Grid    *grid.Grid
	Layout  *grid.Layout // live layout; adjusters must not mutate it
	Circuit *circuit.Circuit
	Cycle   int
	// Pending lists, per qubit, the remaining two-qubit gate indices
	// (front first). Adjusters use it to find distant interacting pairs.
	Pending [][]int
}

// LayoutAdjuster lets a baseline (AutoBraid) propose SWAP insertions
// between cycles. Proposals for non-adjacent tiles are rejected by the
// router with an error; proposing nothing is always safe.
type LayoutAdjuster interface {
	Propose(st *RouterState) []TileSwap
}

// CycleStats summarizes one braiding cycle for an Observer: how much of
// the ready set was placed, how much was deferred by congestion, and the
// lattice resources the cycle consumed.
type CycleStats struct {
	Cycle      int
	Ready      int // executable two-qubit gates at cycle start
	Executed   int // braids placed for circuit gates
	Deferred   int // ready gates pushed to the next cycle
	SwapBraids int // in-flight inserted-SWAP braids this cycle
	PathLength int // routing vertices consumed this cycle
}

// Observer receives per-cycle statistics as the router runs. Observers
// must not retain or mutate router state; they are for congestion
// profiling and debugging.
type Observer interface {
	OnCycle(CycleStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(CycleStats)

// OnCycle implements Observer.
func (f ObserverFunc) OnCycle(s CycleStats) { f(s) }

// Config selects the pieces of the mapping flow. Zero-value fields get
// the HiLight defaults (pattern+proximity placement, proposed ordering,
// closest-corner A*, threshold 4).
type Config struct {
	Placement place.Method
	Ordering  order.Strategy
	Finder    route.Finder
	// OrderingThreshold invokes Ordering only when the ready set is
	// strictly larger; ≤0 means DefaultOrderingThreshold.
	OrderingThreshold int
	// Adjuster, when non-nil, may insert SWAPs between cycles.
	Adjuster LayoutAdjuster
	// QCO enables the program-level optimization (§3.3): commuting-CX
	// reordering folded into gate-list generation.
	QCO bool
	// Observer, when non-nil, receives per-cycle routing statistics.
	Observer Observer
}

func (cfg *Config) fillDefaults() {
	if cfg.Placement == nil {
		cfg.Placement = place.HiLight{}
	}
	if cfg.Ordering == nil {
		cfg.Ordering = order.Proposed{}
	}
	if cfg.Finder == nil {
		cfg.Finder = &route.AStar{}
	}
	if cfg.OrderingThreshold <= 0 {
		cfg.OrderingThreshold = DefaultOrderingThreshold
	}
}

// Result is the outcome of mapping a circuit onto a grid.
type Result struct {
	Schedule *sched.Schedule
	Circuit  *circuit.Circuit // the routed circuit (post SWAP-decomposition/QCO)
	Grid     *grid.Grid
	Latency  int
	PathLen  int           // total braiding path length (ResUtil numerator)
	Runtime  time.Duration // wall-clock mapping time
	ResUtil  float64       // Eq. 1
}

// Map runs the full mapping flow: (optional QCO) → initial placement →
// the Alg. 2 routing loop. The returned schedule always validates against
// the returned circuit.
func Map(c *circuit.Circuit, g *grid.Grid, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	start := time.Now()
	work := c.DecomposeSWAPs()
	if cfg.QCO {
		work = OptimizeProgram(work)
	}
	if g.Capacity() < work.NumQubits {
		return nil, fmt.Errorf("core: %s cannot hold %d qubits", g, work.NumQubits)
	}
	layout := cfg.Placement.Place(work, g)
	s, err := routeCircuit(work, g, layout, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Schedule: s,
		Circuit:  work,
		Grid:     g,
		Latency:  s.Latency(),
		PathLen:  s.TotalPathLength(),
		Runtime:  time.Since(start),
	}
	if res.Latency > 0 {
		res.ResUtil = float64(res.PathLen) / (float64(g.Tiles()) * float64(res.Latency))
	}
	return res, nil
}

// swapOp tracks an in-flight inserted SWAP: three braids between two
// adjacent tiles, the last of which exchanges the occupants.
type swapOp struct {
	t1, t2    int
	remaining int
}

// routeCircuit is the Alg. 2 main loop.
func routeCircuit(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout, cfg Config) (*sched.Schedule, error) {
	s := &sched.Schedule{Grid: g, Initial: layout.Clone()}

	// circList: per-qubit gate lists with a cursor each (Alg. 2 line 2).
	ql := circuit.NewQubitLists(c)
	cursor := make([]int, c.NumQubits)
	remaining := c.CXCount()
	heights := gateHeights(c, ql)

	// skip1Q advances a qubit's cursor past single-qubit gates: they cost
	// no braiding cycles.
	skip1Q := func(q int) {
		lst := ql.Lists[q]
		for cursor[q] < len(lst) && !c.Gates[lst[cursor[q]]].TwoQubit() {
			cursor[q]++
		}
	}
	for q := 0; q < c.NumQubits; q++ {
		skip1Q(q)
	}

	occ := route.NewOccupancy()
	var active []swapOp
	cycle := 0
	guard := 0
	maxCycles := 16*(remaining+len(c.Gates)) + 4*g.Tiles() + 64

	for remaining > 0 || len(active) > 0 {
		if guard++; guard > maxCycles {
			return nil, fmt.Errorf("core: router exceeded %d cycles with %d gates left — scheduling deadlock", maxCycles, remaining)
		}
		occ.Reset()
		var layer sched.Layer
		busyTile := map[int]bool{}

		// 1) Keep in-flight SWAP braids going; they occupy their tiles.
		for i := range active {
			op := &active[i]
			p, ok := cfg.Finder.Find(g, occ, op.t1, op.t2)
			if !ok {
				busyTile[op.t1], busyTile[op.t2] = true, true
				continue // stalled by congestion; retry next cycle
			}
			occ.Add(g, p)
			op.remaining--
			layer = append(layer, sched.Braid{
				Gate: -1, CtlTile: op.t1, TgtTile: op.t2, Path: p,
				SwapTiles: op.remaining == 0,
			})
			busyTile[op.t1], busyTile[op.t2] = true, true
		}

		// 2) Gate ordering (Alg. 2 line 4): collect the ready set — both
		// operands have the gate at their front (the FrontList check).
		var ready []order.Ready
		for q := 0; q < c.NumQubits; q++ {
			lst := ql.Lists[q]
			if cursor[q] >= len(lst) {
				continue
			}
			gi := lst[cursor[q]]
			gate := c.Gates[gi]
			if q != gate.Q0 {
				continue // count each gate once, from its control side
			}
			tq := gate.Q1
			if cursor[tq] < len(ql.Lists[tq]) && ql.Lists[tq][cursor[tq]] == gi {
				ready = append(ready, order.Ready{
					Gate:    gi,
					CtlTile: layout.QubitTile[gate.Q0],
					TgtTile: layout.QubitTile[gate.Q1],
					Height:  heights[gi],
				})
			}
		}
		if len(ready) > cfg.OrderingThreshold {
			ready = cfg.Ordering.Order(ready, g)
		}

		// 3) Braiding path-finding per ready gate (Alg. 2 lines 7–11).
		for _, r := range ready {
			if busyTile[r.CtlTile] || busyTile[r.TgtTile] {
				continue
			}
			p, ok := cfg.Finder.Find(g, occ, r.CtlTile, r.TgtTile)
			if !ok {
				continue // deferred to the next cycle
			}
			occ.Add(g, p)
			layer = append(layer, sched.Braid{
				Gate: r.Gate, CtlTile: r.CtlTile, TgtTile: r.TgtTile, Path: p,
			})
			busyTile[r.CtlTile], busyTile[r.TgtTile] = true, true
			gate := c.Gates[r.Gate]
			cursor[gate.Q0]++
			cursor[gate.Q1]++
			skip1Q(gate.Q0)
			skip1Q(gate.Q1)
			remaining--
		}

		if len(layer) > 0 {
			if cfg.Observer != nil {
				stats := CycleStats{Cycle: cycle, Ready: len(ready)}
				for _, b := range layer {
					stats.PathLength += len(b.Path)
					if b.Gate >= 0 {
						stats.Executed++
					} else {
						stats.SwapBraids++
					}
				}
				stats.Deferred = stats.Ready - stats.Executed
				cfg.Observer.OnCycle(stats)
			}
			s.Layers = append(s.Layers, layer)
			cycle++
		}

		// 4) Apply completed SWAPs and drop them from the active list.
		kept := active[:0]
		for _, op := range active {
			if op.remaining == 0 {
				layout.Swap(op.t1, op.t2)
			} else {
				kept = append(kept, op)
			}
		}
		active = kept

		// 5) Let the adjuster (AutoBraid baseline) propose new SWAPs.
		if cfg.Adjuster != nil && remaining > 0 {
			st := &RouterState{
				Grid: g, Layout: layout, Circuit: c, Cycle: cycle,
				Pending: pendingLists(c, ql, cursor),
			}
			for _, sw := range cfg.Adjuster.Propose(st) {
				if g.Dist(sw.T1, sw.T2) != 1 {
					return nil, fmt.Errorf("core: adjuster proposed non-adjacent swap %d-%d", sw.T1, sw.T2)
				}
				if tileInFlight(active, sw.T1) || tileInFlight(active, sw.T2) {
					continue
				}
				active = append(active, swapOp{t1: sw.T1, t2: sw.T2, remaining: 3})
			}
		}

		if len(layer) == 0 && len(active) == 0 && remaining > 0 {
			return nil, fmt.Errorf("core: no progress with %d gates remaining", remaining)
		}
	}
	return s, nil
}

func tileInFlight(active []swapOp, t int) bool {
	for _, op := range active {
		if op.t1 == t || op.t2 == t {
			return true
		}
	}
	return false
}

// gateHeights computes, per two-qubit gate, the length of the longest
// chain of dependent two-qubit gates below it — the priority the
// CriticalPath ordering consumes. One backward sweep over the gate list.
func gateHeights(c *circuit.Circuit, ql *circuit.QubitLists) []int {
	heights := make([]int, len(c.Gates))
	// nextCX[q] is the height of the next two-qubit gate after the sweep
	// position on qubit q (-1 when none).
	nextCX := make([]int, c.NumQubits)
	for q := range nextCX {
		nextCX[q] = -1
	}
	for gi := len(c.Gates) - 1; gi >= 0; gi-- {
		g := c.Gates[gi]
		if !g.TwoQubit() {
			continue
		}
		h := 0
		for _, q := range [2]int{g.Q0, g.Q1} {
			if nextCX[q] >= 0 && nextCX[q]+1 > h {
				h = nextCX[q] + 1
			}
		}
		heights[gi] = h
		nextCX[g.Q0] = h
		nextCX[g.Q1] = h
	}
	return heights
}

// pendingLists returns, per qubit, the remaining two-qubit gate indices.
func pendingLists(c *circuit.Circuit, ql *circuit.QubitLists, cursor []int) [][]int {
	out := make([][]int, c.NumQubits)
	for q := range out {
		for _, gi := range ql.Lists[q][cursor[q]:] {
			if c.Gates[gi].TwoQubit() {
				out[q] = append(out[q], gi)
			}
		}
	}
	return out
}
