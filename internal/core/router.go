// Package core implements the HiLight compiler as an explicit pass
// pipeline: a Pipeline of named Pass stages (validate → decompose-swaps
// → qco → capacity → place → route → adjust → compact →
// finalize-metrics) threading a shared State, with per-stage wall-clock
// and counter tracing in Result.Trace. Methods are declarative Specs in
// a static registry — component names resolved against registered
// placement/ordering/finder/adjuster factories — covering every variant
// the paper evaluates (hilight-map/-pg/-gm, the Fig. 9 baseline) plus
// the hooks the AutoBraid baseline plugs its SWAP-inserting layout
// adjustment into. This file holds the route pass's engine: the Alg. 2
// main loop, kept allocation-free in steady state.
package core

import (
	"context"
	"fmt"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/obs"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// DefaultOrderingThreshold is the ready-set size above which the ordering
// strategy is invoked; below it the discovery order is used directly. The
// paper adopts 4 from AutoBraid's analysis.
const DefaultOrderingThreshold = 4

// TileSwap asks the router to exchange the occupants of two adjacent
// tiles via an inserted three-braid SWAP.
type TileSwap struct {
	T1, T2 int
}

// RouterState is the read-only view a LayoutAdjuster gets each cycle.
// The struct and its Pending slices are owned by the router and reused
// between cycles; adjusters must not retain them past Propose.
type RouterState struct {
	Grid    *grid.Grid
	Layout  *grid.Layout // live layout; adjusters must not mutate it
	Circuit *circuit.Circuit
	Cycle   int
	// Pending lists, per qubit, the remaining two-qubit gate indices
	// (front first). Adjusters use it to find distant interacting pairs.
	Pending [][]int
}

// LayoutAdjuster lets a baseline (AutoBraid) propose SWAP insertions
// between cycles. Proposals for non-adjacent tiles are rejected by the
// router with an error; proposing nothing is always safe.
type LayoutAdjuster interface {
	Propose(st *RouterState) []TileSwap
}

// CycleStats summarizes one braiding cycle for an Observer: how much of
// the ready set was placed, how much was deferred by congestion, and the
// lattice resources the cycle consumed.
type CycleStats struct {
	Cycle      int
	Ready      int // executable two-qubit gates at cycle start
	Executed   int // braids placed for circuit gates
	Deferred   int // ready gates pushed to the next cycle
	SwapBraids int // in-flight inserted-SWAP braids this cycle
	PathLength int // routing vertices consumed this cycle
}

// Observer receives per-cycle statistics as the router runs. Observers
// must not retain or mutate router state; they are for congestion
// profiling and debugging.
type Observer interface {
	OnCycle(CycleStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(CycleStats)

// OnCycle implements Observer.
func (f ObserverFunc) OnCycle(s CycleStats) { f(s) }

// ScheduleSink receives the schedule incrementally while the router
// produces it: OnStart once, with the grid and the initial layout (a
// router-owned snapshot taken before any inserted SWAP mutates the live
// layout), then OnLayer for every sealed braiding cycle, in order. The
// layer and its braid paths are arena-backed router state — a sink must
// consume or copy them before returning and must not retain them. A sink
// error aborts the compile; the streaming HTTP handler relies on this to
// stop routing when the client hangs up. Sinks observe the raw route
// output: passes that rewrite the schedule afterwards (compact) are not
// replayed into the sink.
type ScheduleSink interface {
	OnStart(g *grid.Grid, initial *grid.Layout) error
	OnLayer(cycle int, layer sched.Layer) error
}

// config is the resolved component bundle a pipeline threads into the
// router: the materialized form of a Spec. Zero-value fields get the
// HiLight defaults (pattern+proximity placement, proposed ordering,
// closest-corner A*, threshold 4). External callers never build one —
// they go through Spec and the registries.
type config struct {
	Placement place.Method
	Ordering  order.Strategy
	Finder    route.Finder
	// OrderingThreshold invokes Ordering only when the ready set is
	// strictly larger; ≤0 means DefaultOrderingThreshold.
	OrderingThreshold int
	// Adjuster, when non-nil, may insert SWAPs between cycles.
	Adjuster LayoutAdjuster
	// QCO enables the program-level optimization (§3.3): commuting-CX
	// reordering folded into gate-list generation.
	QCO bool
	// Observer, when non-nil, receives per-cycle routing statistics.
	Observer Observer
	// Sink, when non-nil, receives the schedule incrementally as the
	// router seals each cycle (see ScheduleSink).
	Sink ScheduleSink
	// FinderName is the registry name Finder was resolved from ("" when
	// the default applied). The pipeline uses it to decide whether the
	// parallel route pass — which substitutes the windowed finder — may
	// take over without changing which gates are routable.
	FinderName string
	// RouteWorkers selects the parallel route pass: 0 keeps the
	// sequential Alg. 2 loop, n ≥ 1 routes each dependency layer with n
	// speculative workers, and negative means GOMAXPROCS. The schedule is
	// deterministic for any n ≥ 1.
	RouteWorkers int
	// Lookahead is the windowed-lookahead depth of the parallel pass:
	// congestion from the next k pending two-qubit gates per qubit breaks
	// equal-cost path ties. ≤ 0 disables the field.
	Lookahead int
	// Metrics, when non-nil, aggregates pipeline and routing counters
	// across compiles (see RunOptions.Metrics).
	Metrics *obs.Registry
	// Ctx, when non-nil, is honored at every cycle boundary of the
	// routing loop: once done, Map returns an error wrapping ErrCanceled.
	Ctx context.Context
	// Warm, when non-nil, makes the route pass replay Warm.Prefix
	// verbatim before entering the Alg. 2 loop (see WarmStart).
	Warm *WarmStart
}

func (cfg *config) fillDefaults() {
	if cfg.Placement == nil {
		cfg.Placement = place.HiLight{}
	}
	if cfg.Ordering == nil {
		cfg.Ordering = order.Proposed{}
	}
	if cfg.Finder == nil {
		cfg.Finder = &route.AStar{}
	}
	if cfg.OrderingThreshold <= 0 {
		cfg.OrderingThreshold = DefaultOrderingThreshold
	}
}

// swapOp tracks an in-flight inserted SWAP: three braids between two
// adjacent tiles, the last of which exchanges the occupants.
type swapOp struct {
	t1, t2    int
	remaining int
}

// routeCircuit is the Alg. 2 main loop on a one-shot router.
func routeCircuit(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout, cfg config) (*sched.Schedule, error) {
	var rt router
	return rt.route(c, g, layout, cfg)
}

// router holds every piece of scratch state the Alg. 2 main loop needs,
// so repeated route calls (batch compilation, benchmarks) run without
// heap allocations once the buffers have warmed up. The zero value is
// ready to use. A router is not safe for concurrent use, and the schedule
// returned by route is owned by the router: it is valid only until the
// next route call on the same router.
type router struct {
	// Per-call inputs, stored to keep the helper methods argument-free.
	c      *circuit.Circuit
	g      *grid.Grid
	layout *grid.Layout
	cfg    config

	// Per-grid state (reallocated when the grid changes). Keyed by grid
	// identity, not tile count: two same-sized grids can carry different
	// defect maps, and the occupancy bakes defects in at construction.
	occ       *route.Occupancy
	occGrid   *grid.Grid
	busyTile  []int // tile -> epoch stamp; busy iff == busyEpoch
	busyEpoch int

	// Per-circuit state.
	ql      circuit.QubitLists
	cursor  []int
	heights []int
	nextCX  []int

	// Per-cycle scratch.
	ready    []order.Ready
	active   []swapOp
	layerBuf sched.Layer
	pathBuf  route.Path

	// Adjuster support (only populated when an adjuster is configured).
	pending     [][]int
	pendingBack []int
	pendingOffs []int
	state       RouterState

	// Result storage. Braiding paths are appended into arena and braids
	// into braidArena, both sliced out, so a schedule costs O(log
	// total-path-length) allocations the first time and none once the
	// arenas have grown to steady state.
	sch        *sched.Schedule
	arena      []int
	braidArena []sched.Braid
}

// init sizes the scratch for a (circuit, grid, layout) triple and resets
// all per-call state.
func (r *router) init(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout, cfg config) {
	r.c, r.g, r.layout, r.cfg = c, g, layout, cfg

	if r.occ == nil || r.occGrid != g {
		r.occ = route.NewOccupancy(g)
		r.occGrid = g
		r.busyTile = make([]int, g.Tiles())
		r.busyEpoch = 0
	}

	r.ql.Fill(c)
	r.cursor = resizeZeroed(r.cursor, c.NumQubits)
	r.computeHeights()

	r.ready = r.ready[:0]
	r.active = r.active[:0]
	r.layerBuf = r.layerBuf[:0]
	r.arena = r.arena[:0]
	r.braidArena = r.braidArena[:0]

	if r.sch == nil {
		r.sch = &sched.Schedule{}
	}
	r.sch.Grid = g
	r.sch.Layers = r.sch.Layers[:0]
	if r.sch.Initial == nil ||
		len(r.sch.Initial.QubitTile) != len(layout.QubitTile) ||
		len(r.sch.Initial.TileQubit) != len(layout.TileQubit) {
		r.sch.Initial = layout.Clone()
	} else {
		r.sch.Initial.CopyFrom(layout)
	}

	if cfg.Adjuster != nil {
		r.initPending()
	}
}

// route runs the Alg. 2 main loop. The returned schedule is owned by the
// router and valid until the next route call.
func (r *router) route(c *circuit.Circuit, g *grid.Grid, layout *grid.Layout, cfg config) (*sched.Schedule, error) {
	r.init(c, g, layout, cfg)
	if cfg.Sink != nil {
		if err := cfg.Sink.OnStart(g, r.sch.Initial); err != nil {
			return nil, fmt.Errorf("core: schedule sink: %w", err)
		}
	}

	// skip1Q advances each qubit's cursor past single-qubit gates: they
	// cost no braiding cycles.
	remaining := c.CXCount()
	for q := 0; q < c.NumQubits; q++ {
		r.skip1Q(q)
	}

	cycle := 0
	if cfg.Warm != nil {
		n, err := r.replayPrefix(cfg.Warm.Prefix, &remaining)
		if err != nil {
			return nil, err
		}
		cycle = n
	}
	guard := 0
	maxCycles := 16*(remaining+len(c.Gates)) + 4*g.Tiles() + 64

	for remaining > 0 || len(r.active) > 0 {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, fmt.Errorf("%w at cycle %d", err, cycle)
		}
		if guard++; guard > maxCycles {
			return nil, &ErrUnroutable{Gate: -1, Reason: fmt.Sprintf(
				"router exceeded %d cycles with %d gates left — scheduling livelock", maxCycles, remaining)}
		}
		r.occ.Reset()
		r.busyEpoch++
		r.layerBuf = r.layerBuf[:0]

		// 1) Keep in-flight SWAP braids going; they occupy their tiles.
		for i := range r.active {
			op := &r.active[i]
			p, ok := cfg.Finder.Find(g, r.occ, op.t1, op.t2, r.pathBuf[:0])
			if !ok {
				r.markBusy(op.t1, op.t2)
				continue // stalled by congestion; retry next cycle
			}
			r.pathBuf = p
			r.occ.Add(g, p)
			op.remaining--
			r.layerBuf = append(r.layerBuf, sched.Braid{
				Gate: -1, CtlTile: op.t1, TgtTile: op.t2, Path: r.storePath(p),
				SwapTiles: op.remaining == 0,
			})
			r.markBusy(op.t1, op.t2)
		}

		// 2) Gate ordering (Alg. 2 line 4): collect the ready set — both
		// operands have the gate at their front (the FrontList check).
		ready := r.collectReady()
		if len(ready) > cfg.OrderingThreshold {
			ready = cfg.Ordering.Order(ready, g)
			r.ready = ready[:0] // adopt whatever backing Order returned
		}

		// 3) Braiding path-finding per ready gate (Alg. 2 lines 7–11).
		for _, rd := range ready {
			if r.isBusy(rd.CtlTile) || r.isBusy(rd.TgtTile) {
				continue
			}
			p, ok := cfg.Finder.Find(g, r.occ, rd.CtlTile, rd.TgtTile, r.pathBuf[:0])
			if !ok {
				continue // deferred to the next cycle
			}
			r.pathBuf = p
			r.occ.Add(g, p)
			r.layerBuf = append(r.layerBuf, sched.Braid{
				Gate: rd.Gate, CtlTile: rd.CtlTile, TgtTile: rd.TgtTile, Path: r.storePath(p),
			})
			r.markBusy(rd.CtlTile, rd.TgtTile)
			gate := c.Gates[rd.Gate]
			r.cursor[gate.Q0]++
			r.cursor[gate.Q1]++
			r.skip1Q(gate.Q0)
			r.skip1Q(gate.Q1)
			if cfg.Adjuster != nil {
				// The executed gate is at the front of both pending lists.
				r.pending[gate.Q0] = r.pending[gate.Q0][1:]
				r.pending[gate.Q1] = r.pending[gate.Q1][1:]
			}
			remaining--
		}

		if len(r.layerBuf) > 0 {
			if cfg.Observer != nil {
				stats := CycleStats{Cycle: cycle, Ready: len(ready)}
				for _, b := range r.layerBuf {
					stats.PathLength += len(b.Path)
					if b.Gate >= 0 {
						stats.Executed++
					} else {
						stats.SwapBraids++
					}
				}
				stats.Deferred = stats.Ready - stats.Executed
				cfg.Observer.OnCycle(stats)
			}
			r.flushLayer()
			if cfg.Sink != nil {
				if err := cfg.Sink.OnLayer(cycle, r.sch.Layers[len(r.sch.Layers)-1]); err != nil {
					return nil, fmt.Errorf("core: schedule sink: %w", err)
				}
			}
			cycle++
		}

		// 4) Apply completed SWAPs and drop them from the active list.
		kept := r.active[:0]
		for _, op := range r.active {
			if op.remaining == 0 {
				layout.Swap(op.t1, op.t2)
			} else {
				kept = append(kept, op)
			}
		}
		r.active = kept

		// 5) Let the adjuster (AutoBraid baseline) propose new SWAPs.
		if cfg.Adjuster != nil && remaining > 0 {
			r.state = RouterState{
				Grid: g, Layout: layout, Circuit: c, Cycle: cycle,
				Pending: r.pending,
			}
			for _, sw := range cfg.Adjuster.Propose(&r.state) {
				if g.Dist(sw.T1, sw.T2) != 1 {
					return nil, fmt.Errorf("core: adjuster proposed non-adjacent swap %d-%d", sw.T1, sw.T2)
				}
				if tileInFlight(r.active, sw.T1) || tileInFlight(r.active, sw.T2) {
					continue
				}
				r.active = append(r.active, swapOp{t1: sw.T1, t2: sw.T2, remaining: 3})
			}
		}

		// Stuck-progress detection: this sweep started from an empty
		// lattice (occupancy was reset, no in-flight SWAPs) and still
		// placed nothing, so no amount of waiting will ever route the
		// ready gates — the operand tiles are separated by defects or
		// reserved regions. Fail with a typed, actionable error instead
		// of spinning until the cycle guard trips.
		if len(r.layerBuf) == 0 && len(r.active) == 0 && remaining > 0 {
			if len(ready) > 0 {
				rd := ready[0]
				return nil, &ErrUnroutable{
					Gate: rd.Gate, CtlTile: rd.CtlTile, TgtTile: rd.TgtTile,
					Reason: fmt.Sprintf("no braiding path on an empty lattice (%d gates remaining); defects or reserved regions disconnect the tiles", remaining),
				}
			}
			return nil, &ErrUnroutable{Gate: -1, Reason: fmt.Sprintf(
				"%d gates remaining but none ready — dependency deadlock", remaining)}
		}
	}
	return r.sch, nil
}

// replayPrefix re-emits the warm-start prefix layers verbatim, verifying
// every braid against the current circuit, layout, grid and defect map —
// the same invariants sched.Validate would check — so a stale prefix can
// never smuggle an invalid cycle into the schedule. Returns the number
// of cycles replayed; any mismatch fails with ErrWarmStart and the
// caller falls back to a cold compile. Replay performs no path search:
// its cost is linear in the prefix path length, which is what makes a
// recompile cheaper than a cold compile.
func (r *router) replayPrefix(prefix []sched.Layer, remaining *int) (int, error) {
	// Size the result storage for the whole prefix up front: replaying
	// thousands of layers through incremental append would spend more
	// time in slice growth than in verification.
	braids, verts := 0, 0
	for _, layer := range prefix {
		braids += len(layer)
		for _, b := range layer {
			verts += len(b.Path)
		}
	}
	if cap(r.arena)-len(r.arena) < verts {
		next := make([]int, len(r.arena), len(r.arena)+verts+verts/4)
		copy(next, r.arena)
		r.arena = next
	}
	if cap(r.braidArena)-len(r.braidArena) < braids {
		next := make([]sched.Braid, len(r.braidArena), len(r.braidArena)+braids+braids/4)
		copy(next, r.braidArena)
		r.braidArena = next
	}
	if cap(r.sch.Layers)-len(r.sch.Layers) < len(prefix) {
		next := make([]sched.Layer, len(r.sch.Layers), len(r.sch.Layers)+len(prefix)+len(prefix)/8+8)
		copy(next, r.sch.Layers)
		r.sch.Layers = next
	}
	for li, layer := range prefix {
		if len(layer) == 0 {
			return 0, fmt.Errorf("core: %w: empty layer %d", ErrWarmStart, li)
		}
		r.occ.Reset()
		r.busyEpoch++
		r.layerBuf = r.layerBuf[:0]
		for _, b := range layer {
			if err := r.replayBraid(b); err != nil {
				return 0, fmt.Errorf("core: %w: cycle %d: %v", ErrWarmStart, li, err)
			}
			*remaining--
		}
		if r.cfg.Observer != nil {
			stats := CycleStats{Cycle: li, Ready: len(layer), Executed: len(layer)}
			for _, b := range r.layerBuf {
				stats.PathLength += len(b.Path)
			}
			r.cfg.Observer.OnCycle(stats)
		}
		r.flushLayer()
		if r.cfg.Sink != nil {
			if err := r.cfg.Sink.OnLayer(li, r.sch.Layers[len(r.sch.Layers)-1]); err != nil {
				return 0, fmt.Errorf("core: schedule sink: %w", err)
			}
		}
	}
	return len(prefix), nil
}

// replayBraid verifies one prefix braid still holds on the current
// compile state and appends it to the layer under construction. The
// checks mirror sched.Validate: the gate exists, is two-qubit, is at
// the front of both operand gate lists, its operands sit on the braid's
// tiles, the tiles are usable, the path is a live simple walk anchored
// at the endpoint corners, and nothing in this cycle conflicts.
func (r *router) replayBraid(b sched.Braid) error {
	if b.Gate < 0 || b.SwapTiles {
		return fmt.Errorf("inserted-SWAP braid cannot be replayed")
	}
	if b.Gate >= len(r.c.Gates) {
		return fmt.Errorf("gate %d beyond circuit end", b.Gate)
	}
	gate := r.c.Gates[b.Gate]
	if !gate.TwoQubit() {
		return fmt.Errorf("gate %d is not two-qubit", b.Gate)
	}
	for _, q := range [2]int{gate.Q0, gate.Q1} {
		lst := r.ql.Lists[q]
		if r.cursor[q] >= len(lst) || lst[r.cursor[q]] != b.Gate {
			return fmt.Errorf("gate %d is not the next gate on qubit %d", b.Gate, q)
		}
	}
	if r.layout.QubitTile[gate.Q0] != b.CtlTile || r.layout.QubitTile[gate.Q1] != b.TgtTile {
		return fmt.Errorf("gate %d operands moved: layout has tiles %d,%d, braid has %d,%d",
			b.Gate, r.layout.QubitTile[gate.Q0], r.layout.QubitTile[gate.Q1], b.CtlTile, b.TgtTile)
	}
	if !r.g.Usable(b.CtlTile) || !r.g.Usable(b.TgtTile) {
		return fmt.Errorf("gate %d braids on an unusable tile (%d or %d)", b.Gate, b.CtlTile, b.TgtTile)
	}
	if err := b.Path.Validate(r.g); err != nil {
		return fmt.Errorf("gate %d path: %v", b.Gate, err)
	}
	if !tileCorner(r.g, b.CtlTile, b.Path[0]) || !tileCorner(r.g, b.TgtTile, b.Path[len(b.Path)-1]) {
		return fmt.Errorf("gate %d path not anchored at its tile corners", b.Gate)
	}
	if r.occ.Conflicts(r.g, b.Path) {
		return fmt.Errorf("gate %d path conflicts within its cycle", b.Gate)
	}
	r.occ.Add(r.g, b.Path)
	r.layerBuf = append(r.layerBuf, sched.Braid{
		Gate: b.Gate, CtlTile: b.CtlTile, TgtTile: b.TgtTile, Path: r.storePath(b.Path),
	})
	r.markBusy(b.CtlTile, b.TgtTile)
	r.cursor[gate.Q0]++
	r.cursor[gate.Q1]++
	r.skip1Q(gate.Q0)
	r.skip1Q(gate.Q1)
	return nil
}

// tileCorner reports whether vertex v is one of tile t's four corners.
func tileCorner(g *grid.Grid, t, v int) bool {
	x, y := g.TileXY(t)
	return v == g.VertexID(x, y) || v == g.VertexID(x+1, y) ||
		v == g.VertexID(x, y+1) || v == g.VertexID(x+1, y+1)
}

// ctxErr translates a done context into the typed cancellation error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %w (%v)", ErrCanceled, err)
	}
	return nil
}

// skip1Q advances qubit q's cursor past single-qubit gates.
func (r *router) skip1Q(q int) {
	lst := r.ql.Lists[q]
	for r.cursor[q] < len(lst) && !r.c.Gates[lst[r.cursor[q]]].TwoQubit() {
		r.cursor[q]++
	}
}

// markBusy stamps tiles as braiding this cycle.
func (r *router) markBusy(t1, t2 int) {
	r.busyTile[t1] = r.busyEpoch
	r.busyTile[t2] = r.busyEpoch
}

// isBusy reports whether tile t already braids this cycle.
func (r *router) isBusy(t int) bool { return r.busyTile[t] == r.busyEpoch }

// collectReady rebuilds the ready set into the reused r.ready slice.
func (r *router) collectReady() []order.Ready {
	r.ready = r.ready[:0]
	for q := 0; q < r.c.NumQubits; q++ {
		lst := r.ql.Lists[q]
		if r.cursor[q] >= len(lst) {
			continue
		}
		gi := lst[r.cursor[q]]
		gate := r.c.Gates[gi]
		if q != gate.Q0 {
			continue // count each gate once, from its control side
		}
		tq := gate.Q1
		if r.cursor[tq] < len(r.ql.Lists[tq]) && r.ql.Lists[tq][r.cursor[tq]] == gi {
			r.ready = append(r.ready, order.Ready{
				Gate:    gi,
				CtlTile: r.layout.QubitTile[gate.Q0],
				TgtTile: r.layout.QubitTile[gate.Q1],
				Height:  r.heights[gi],
			})
		}
	}
	return r.ready
}

// storePath copies p into the router's arena and returns the stored
// slice (capacity-clamped so later appends cannot clobber neighbors).
func (r *router) storePath(p route.Path) route.Path {
	n := len(r.arena)
	r.arena = append(r.arena, p...)
	return route.Path(r.arena[n:len(r.arena):len(r.arena)])
}

// flushLayer appends a copy of layerBuf to the schedule. Braids live in
// a shared arena so a schedule with thousands of single-braid layers
// (the session replay shape) costs O(log braids) allocations, not one
// per layer. An arena growth leaves earlier layers on the old backing
// array, which stays valid — layers never alias each other.
func (r *router) flushLayer() {
	n := len(r.braidArena)
	r.braidArena = append(r.braidArena, r.layerBuf...)
	r.sch.Layers = append(r.sch.Layers, sched.Layer(r.braidArena[n:len(r.braidArena):len(r.braidArena)]))
}

// computeHeights computes, per two-qubit gate, the length of the longest
// chain of dependent two-qubit gates below it — the priority the
// CriticalPath ordering consumes. One backward sweep over the gate list.
func (r *router) computeHeights() {
	c := r.c
	r.heights = resizeZeroed(r.heights, len(c.Gates))
	// nextCX[q] is the height of the next two-qubit gate after the sweep
	// position on qubit q (-1 when none).
	r.nextCX = resizeFilled(r.nextCX, c.NumQubits, -1)
	for gi := len(c.Gates) - 1; gi >= 0; gi-- {
		g := c.Gates[gi]
		if !g.TwoQubit() {
			continue
		}
		h := 0
		for _, q := range [2]int{g.Q0, g.Q1} {
			if r.nextCX[q] >= 0 && r.nextCX[q]+1 > h {
				h = r.nextCX[q] + 1
			}
		}
		r.heights[gi] = h
		r.nextCX[g.Q0] = h
		r.nextCX[g.Q1] = h
	}
}

// initPending builds the per-qubit remaining two-qubit gate lists for the
// adjuster, as views into one shared backing slice. The lists are then
// maintained incrementally: when a gate executes, the router pops it off
// the front of both operands' lists.
func (r *router) initPending() {
	c := r.c
	r.pending = resizeSlices(r.pending, c.NumQubits)
	r.pendingBack = r.pendingBack[:0]
	r.pendingOffs = resizeZeroed(r.pendingOffs, c.NumQubits+1)
	for q := 0; q < c.NumQubits; q++ {
		r.pendingOffs[q] = len(r.pendingBack)
		for _, gi := range r.ql.Lists[q][r.cursor[q]:] {
			if c.Gates[gi].TwoQubit() {
				r.pendingBack = append(r.pendingBack, gi)
			}
		}
	}
	r.pendingOffs[c.NumQubits] = len(r.pendingBack)
	for q := 0; q < c.NumQubits; q++ {
		r.pending[q] = r.pendingBack[r.pendingOffs[q]:r.pendingOffs[q+1]]
	}
}

func tileInFlight(active []swapOp, t int) bool {
	for _, op := range active {
		if op.t1 == t || op.t2 == t {
			return true
		}
	}
	return false
}

// resizeZeroed returns s with length n and every element zero, reusing
// capacity when possible.
func resizeZeroed(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeFilled returns s with length n and every element set to fill.
func resizeFilled(s []int, n, fill int) []int {
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}

// resizeSlices returns s with length n, reusing capacity when possible.
func resizeSlices(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}
