package core

import (
	"math/rand"

	"hilight/internal/circuit"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/qco"
	"hilight/internal/route"
)

// OptimizeProgram applies the program-level optimization (§3.3) and
// returns the rewritten circuit.
func OptimizeProgram(c *circuit.Circuit) *circuit.Circuit { return qco.Optimize(c) }

// HilightMap is the paper's "hilight-map": pattern+proximity placement,
// proposed ordering, closest-corner A* path-finding. rng drives the
// random layout of pattern matching (QFT-like circuits); nil uses a fixed
// seed.
func HilightMap(rng *rand.Rand) Config {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return Config{
		Placement: place.HiLight{Rng: rng},
		Ordering:  order.Proposed{},
		Finder:    &route.AStar{},
	}
}

// HilightPG is "hilight-pg": HilightMap plus program-level optimization.
func HilightPG(rng *rand.Rand) Config {
	cfg := HilightMap(rng)
	cfg.QCO = true
	return cfg
}

// HilightGM is "hilight-gm" from Fig. 9: the graph-inspired GM placement
// combined with HiLight's routing.
func HilightGM(rng *rand.Rand) Config {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return Config{
		Placement: place.GM{Rng: rng},
		Ordering:  order.Proposed{},
		Finder:    &route.AStar{},
	}
}

// Fig9Baseline is the scalability baseline of Fig. 9: GM placement with
// exhaustive 16-corner-pair path-finding.
func Fig9Baseline(rng *rand.Rand) Config {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return Config{
		Placement: place.GM{Rng: rng},
		Ordering:  order.Proposed{},
		Finder:    &route.Full16{},
	}
}
