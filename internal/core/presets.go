package core

import (
	"hilight/internal/circuit"
	"hilight/internal/qco"
)

// OptimizeProgram applies the program-level optimization (§3.3) and
// returns the rewritten circuit.
func OptimizeProgram(c *circuit.Circuit) *circuit.Circuit { return qco.Optimize(c) }

// Built-in method specs: every configuration the paper evaluates that
// is built from this package's own components. The AutoBraid baselines
// ("autobraid-sp", "autobraid-full") register themselves from
// internal/autobraid, whose placement and adjuster they contribute.
func init() {
	// "hilight" is the paper's full configuration: pattern-matching +
	// qubit-proximity placement, ASAP ordering, closest-corner A*, with
	// the program-level optimization on — the same spec as "hilight-pg".
	RegisterMethod("hilight", Spec{Placement: "hilight", Ordering: "proposed", Finder: "astar-closest", QCO: true})
	RegisterMethod("hilight-pg", Spec{Placement: "hilight", Ordering: "proposed", Finder: "astar-closest", QCO: true})
	RegisterMethod("hilight-map", Spec{Placement: "hilight", Ordering: "proposed", Finder: "astar-closest"})
	// "hilight-gm" from Fig. 9: the graph-inspired GM placement combined
	// with HiLight's routing.
	RegisterMethod("hilight-gm", Spec{Placement: "gm", Ordering: "proposed", Finder: "astar-closest"})
	// The Fig. 9 scalability baseline: GM placement with exhaustive
	// 16-corner-pair path-finding.
	RegisterMethod("baseline", Spec{Placement: "gm", Ordering: "proposed", Finder: "full-16"})
	RegisterMethod("identity", Spec{Placement: "identity", Ordering: "proposed", Finder: "astar-closest"})
	RegisterMethod("random", Spec{Placement: "random", Ordering: "proposed", Finder: "astar-closest"})
	RegisterMethod("hilight-refined", Spec{Placement: "hilight+refine", Ordering: "proposed", Finder: "astar-closest"})
	RegisterMethod("hilight-cp", Spec{Placement: "hilight", Ordering: "critical-path", Finder: "astar-closest"})
	// The parallel route-pass variants: same semantic stack as "hilight"
	// / "hilight-map", with the speculative multi-worker router
	// (GOMAXPROCS workers by default) and a 4-gate windowed lookahead.
	// Schedules are deterministic for any worker count.
	RegisterMethod("hilight-parallel", Spec{Placement: "hilight", Ordering: "proposed", Finder: "astar-closest", QCO: true, RouteWorkers: -1, Lookahead: 4})
	RegisterMethod("hilight-map-parallel", Spec{Placement: "hilight", Ordering: "proposed", Finder: "astar-closest", RouteWorkers: -1, Lookahead: 4})
}
