package core

import (
	"testing"

	"hilight/internal/grid"
)

func TestObserverReceivesEveryCycle(t *testing.T) {
	c := qftCircuit(10)
	g := grid.Rect(10)
	var stats []CycleStats
	res, err := Run(c, g, MustMethod("hilight-map"), RunOptions{
		Observer: ObserverFunc(func(s CycleStats) { stats = append(stats, s) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != res.Latency {
		t.Fatalf("observer saw %d cycles, latency %d", len(stats), res.Latency)
	}
	totalExecuted, totalPath := 0, 0
	for i, s := range stats {
		if s.Cycle != i {
			t.Errorf("cycle numbering: %d at index %d", s.Cycle, i)
		}
		if s.Executed <= 0 {
			t.Errorf("cycle %d executed nothing", i)
		}
		if s.Executed+s.Deferred != s.Ready {
			t.Errorf("cycle %d: executed %d + deferred %d != ready %d", i, s.Executed, s.Deferred, s.Ready)
		}
		totalExecuted += s.Executed
		totalPath += s.PathLength
	}
	if totalExecuted != res.Circuit.CXCount() {
		t.Errorf("observer executed total %d != CX count %d", totalExecuted, res.Circuit.CXCount())
	}
	if totalPath != res.PathLen {
		t.Errorf("observer path total %d != result %d", totalPath, res.PathLen)
	}
}

func TestObserverSeesSwapBraids(t *testing.T) {
	c := qftCircuit(6)
	g := grid.Square(6)
	swaps := 0
	if _, err := Run(c, g, MustMethod("hilight-map"), RunOptions{
		Adjuster: &swapHappyAdjuster{},
		Observer: ObserverFunc(func(s CycleStats) { swaps += s.SwapBraids }),
	}); err != nil {
		t.Fatal(err)
	}
	if swaps != 3 {
		t.Errorf("observer saw %d swap braids, want 3", swaps)
	}
}

func TestObserverNilIsSilent(t *testing.T) {
	c := qftCircuit(5)
	if _, err := Run(c, grid.Square(5), Spec{}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
}
