package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/obs"
	"hilight/internal/place"
	"hilight/internal/route"
	"hilight/internal/sched"
)

// State is the shared mutable state a Pipeline threads through its
// passes: the working circuit (rewritten by decompose-swaps and qco),
// the grid, the layout produced by place, the schedule produced by
// route, and the resolved components the passes consume. Passes
// communicate only through State, so a stage can be swapped, removed,
// or instrumented without touching its neighbors.
type State struct {
	// Input is the caller's circuit, untouched.
	Input *circuit.Circuit
	// Circuit is the working circuit: Input after SWAP decomposition
	// and (when enabled) the program-level optimization. The schedule
	// validates against this circuit, not Input.
	Circuit *circuit.Circuit
	Grid    *grid.Grid
	Layout  *grid.Layout
	// Schedule is produced by the route pass and refined by compact.
	Schedule *sched.Schedule
	// Result accumulates the pipeline outcome; finalize-metrics fills
	// the metric fields from Schedule.
	Result *Result

	cfg config      // resolved components (placement, ordering, finder, …)
	cur *StageTrace // trace entry of the running pass, for Count
}

// Count attaches a named counter to the currently running pass's trace
// entry — gate totals after a rewrite, cycles routed, braids hoisted.
// Outside a pass execution it is a no-op.
func (st *State) Count(name string, v int64) {
	if st.cur == nil {
		return
	}
	st.cur.Counters = append(st.cur.Counters, TraceCounter{Name: name, Value: v})
}

// Pass is one named stage of a compile pipeline. Run mutates the shared
// State and returns a typed error to abort the pipeline.
type Pass struct {
	Name string
	Run  func(*State) error
}

// TraceCounter is one named counter of a stage trace.
type TraceCounter struct {
	Name  string
	Value int64
}

// StageTrace records one executed pipeline pass: its name, wall-clock
// duration, and the counters the pass reported. The sum of stage
// durations accounts for (almost all of) Result.Runtime; the remainder
// is runner bookkeeping between passes.
type StageTrace struct {
	Stage    string
	Duration time.Duration
	Counters []TraceCounter
}

// Counter returns the named counter's value, if the stage recorded it.
func (t StageTrace) Counter(name string) (int64, bool) {
	for _, c := range t.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Result is the outcome of compiling a circuit onto a grid.
type Result struct {
	Schedule *sched.Schedule
	Circuit  *circuit.Circuit // the routed circuit (post SWAP-decomposition/QCO)
	// Input is the caller's circuit exactly as handed to the pipeline,
	// before SWAP decomposition and QCO. Recompile edits apply to it.
	Input *circuit.Circuit
	Grid  *grid.Grid
	// BaseGrid is the grid before any per-compile defect map was applied
	// (Grid when no defects were requested). Recompile rebuilds the
	// degraded grid from it when a DefectMap delta arrives.
	BaseGrid *grid.Grid
	Latency  int
	PathLen  int           // total braiding path length (ResUtil numerator)
	Runtime  time.Duration // wall-clock pipeline time
	ResUtil  float64       // Eq. 1
	// Method names the pipeline spec that produced this result ("" for
	// an anonymous spec).
	Method string
	// Trace records every executed pass in order: stage name, duration,
	// and key counters (gates after rewrites, cycles routed, braids
	// compacted). Stage durations sum to ≈ Runtime.
	Trace []StageTrace
	// Degraded is set by the public Compile when the requested method
	// failed and a WithFallback method produced this result instead;
	// FallbackMethod then names the method that succeeded.
	Degraded       bool
	FallbackMethod string
	// WarmCycles is the number of schedule layers replayed verbatim from
	// a warm-start parent (0 for a cold compile). The first WarmCycles
	// layers of Schedule are byte-identical to the parent's.
	WarmCycles int
	// Delta, set by the public Recompile, reports what changed between
	// the parent schedule and this one (sched.Compare output).
	Delta *sched.Diff
}

// WarmStart seeds a pipeline with the reusable part of a previous
// compile: the parent's initial layout and the schedule layer-prefix
// that is still valid for the edited circuit and current grid. The
// route pass replays the prefix verbatim — re-verifying every braid
// against the new circuit, layout and defect map — and resumes the
// Alg. 2 loop where the prefix ends. A prefix braid that no longer
// replays fails the pipeline with ErrWarmStart; callers fall back to a
// cold compile. Warm starts are incompatible with layout adjusters and
// the compact pass (both rewrite cycles the replay promised to keep).
type WarmStart struct {
	// Initial is the parent's initial layout; the warm pipeline adopts a
	// clone of it instead of running placement.
	Initial *grid.Layout
	// Prefix holds the parent schedule layers to replay, in order. The
	// layers are read, never mutated; paths are copied into the new
	// schedule's arena.
	Prefix []sched.Layer
	// Working, when non-nil, is the already-transformed working circuit
	// (post SWAP decomposition and QCO) the session planner computed to
	// find the prefix. The pipeline adopts it instead of re-running both
	// transforms, which would otherwise dominate a short warm recompile.
	Working *circuit.Circuit
}

// RunOptions carries the per-compile knobs that are not part of a
// method's identity: the seeded rng, overrides, cancellation, and the
// optional compact pass.
type RunOptions struct {
	// Rng drives the randomized components; nil means seed 1. Every
	// component of one pipeline shares this stream.
	Rng *rand.Rand
	// QCO, when non-nil, overrides the spec's QCO flag.
	QCO *bool
	// Observer receives per-cycle routing statistics.
	Observer Observer
	// Sink, when non-nil, receives the schedule incrementally as the
	// route pass seals each braiding cycle (see ScheduleSink). Sinks
	// observe the raw route output; the compact pass's rewrites are not
	// replayed.
	Sink ScheduleSink
	// Metrics, when non-nil, aggregates this compile into a process-wide
	// registry: every executed pass feeds its StageTrace under
	// pipeline/<pass>/... names (runs, errors, a seconds histogram, and
	// every trace counter), and the route pass additionally emits
	// route/... totals (braids routed, search pops). One registry may be
	// shared by any number of concurrent compiles.
	Metrics *obs.Registry
	// Ctx, when non-nil, is honored before every pass and at every
	// cycle boundary of the routing loop.
	Ctx context.Context
	// Compact inserts the compact pass between route and
	// finalize-metrics.
	Compact bool
	// Placement, when non-nil, replaces the spec's placement (test
	// hook, mirrored from the public options).
	Placement place.Method
	// Adjuster, when non-nil, replaces the spec's adjuster.
	Adjuster LayoutAdjuster
	// RouteWorkers, when non-nil, overrides the spec's worker count for
	// the parallel route pass (0 sequential, n ≥ 1 workers, negative =
	// GOMAXPROCS). The schedule is byte-identical for every n ≥ 1.
	RouteWorkers *int
	// Lookahead, when non-nil, overrides the spec's windowed-lookahead
	// depth (≤ 0 disables congestion tie-breaking).
	Lookahead *int
	// Warm, when non-nil, warm-starts the compile from a previous
	// result: placement is replaced by the parent layout and the route
	// pass replays Warm.Prefix before routing the remainder. See
	// WarmStart for the compatibility rules.
	Warm *WarmStart
}

// Pipeline is an executable sequence of named passes with its resolved
// components. Build one with NewPipeline; a Pipeline is single-shot —
// stateful components (seeded rngs, swap adjusters) make a second
// Execute diverge, so build a fresh Pipeline per compile.
type Pipeline struct {
	// Spec is the declarative description the pipeline was built from.
	Spec Spec
	// Passes run in order; the slice is the pipeline's full definition
	// and may be inspected or rewrapped before Execute.
	Passes []Pass

	cfg config
}

// NewPipeline resolves the spec's component names and assembles the
// pass sequence:
//
//	validate → decompose-swaps → [qco] → capacity → place → route →
//	[adjust] → [compact] → finalize-metrics
//
// qco runs only when enabled, adjust only when the spec names a layout
// adjuster, compact only when opt.Compact is set. Unknown component
// names fail here, before any compile work.
func NewPipeline(sp Spec, opt RunOptions) (*Pipeline, error) {
	rng := opt.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if opt.QCO != nil {
		sp.QCO = *opt.QCO
	}
	cfg, err := sp.components(rng)
	if err != nil {
		return nil, err
	}
	if opt.Placement != nil {
		cfg.Placement = opt.Placement
	}
	if opt.Adjuster != nil {
		cfg.Adjuster = opt.Adjuster
	}
	cfg.Observer = opt.Observer
	cfg.Sink = opt.Sink
	cfg.Metrics = opt.Metrics
	cfg.Ctx = opt.Ctx
	if opt.RouteWorkers != nil {
		cfg.RouteWorkers = *opt.RouteWorkers
	}
	if opt.Lookahead != nil {
		cfg.Lookahead = *opt.Lookahead
	}
	cfg.Warm = opt.Warm
	if cfg.Warm != nil {
		if cfg.Adjuster != nil {
			return nil, fmt.Errorf("core: %w: layout adjusters rewrite cycles the replayed prefix promised to keep", ErrWarmStart)
		}
		if opt.Compact {
			return nil, fmt.Errorf("core: %w: the compact pass hoists braids into replayed cycles", ErrWarmStart)
		}
		if cfg.Warm.Initial == nil {
			return nil, fmt.Errorf("core: %w: nil initial layout", ErrWarmStart)
		}
	}

	p := &Pipeline{Spec: sp, cfg: cfg}
	p.Passes = append(p.Passes, passValidate)
	if cfg.Warm != nil && cfg.Warm.Working != nil {
		p.Passes = append(p.Passes, passAdoptWorking)
	} else {
		p.Passes = append(p.Passes, passDecomposeSwaps)
		if cfg.QCO {
			p.Passes = append(p.Passes, passQCO)
		}
	}
	routePass := passRoute
	placePass := passPlace
	if cfg.Warm != nil {
		// The sequential router owns prefix replay; the speculative
		// parallel pass would re-derive the prefix cycles from scratch.
		placePass = passPlaceWarm
	} else if cfg.RouteWorkers != 0 && parallelCompatible(cfg) {
		routePass = passRouteParallel
	}
	p.Passes = append(p.Passes, passCapacity, placePass, routePass)
	if cfg.Adjuster != nil {
		p.Passes = append(p.Passes, passAdjust)
	}
	if opt.Compact {
		p.Passes = append(p.Passes, passCompact)
	}
	p.Passes = append(p.Passes, passFinalizeMetrics)
	return p, nil
}

// Execute runs the pipeline on (c, g). Each pass is timed into
// Result.Trace; the context (when set) is checked before every pass and
// inside the routing loop. The returned schedule always validates
// against the returned circuit.
func (p *Pipeline) Execute(c *circuit.Circuit, g *grid.Grid) (*Result, error) {
	st := &State{
		Input:  c,
		Grid:   g,
		Result: &Result{Grid: g, Method: p.Spec.Method, Input: c},
		cfg:    p.cfg,
	}
	start := time.Now()
	for _, pass := range p.Passes {
		if err := ctxErr(st.cfg.Ctx); err != nil {
			return nil, err
		}
		st.Result.Trace = append(st.Result.Trace, StageTrace{Stage: pass.Name})
		st.cur = &st.Result.Trace[len(st.Result.Trace)-1]
		t0 := time.Now()
		err := pass.Run(st)
		st.cur.Duration = time.Since(t0)
		if m := p.cfg.Metrics; m != nil {
			feedStage(m, st.cur, err)
		}
		st.cur = nil
		if err != nil {
			return nil, err
		}
	}
	st.Result.Runtime = time.Since(start)
	return st.Result, nil
}

// signedTraceCounters lists the trace counters that carry signed deltas
// (the qco pass reports cx-delta ≤ 0). They accumulate as gauges so the
// Prometheus exposition stays well-typed; everything else is a monotone
// counter.
var signedTraceCounters = map[string]bool{"cx-delta": true}

// feedStage mirrors one executed pass's StageTrace into the registry
// under pipeline/<stage>/... names: runs and errors counters, a
// wall-clock seconds histogram, and one counter or gauge per trace
// counter. For a single traced compile the registry deltas reconcile
// exactly with Result.Trace. The errors counter is registered even on
// clean runs so scrapes always see it (at zero) next to runs.
func feedStage(m *obs.Registry, tr *StageTrace, err error) {
	prefix := "pipeline/" + tr.Stage + "/"
	m.Counter(prefix + "runs").Inc()
	errs := m.Counter(prefix + "errors")
	if err != nil {
		errs.Inc()
	}
	m.Histogram(prefix+"seconds", obs.DurationBuckets).ObserveDuration(tr.Duration)
	for _, c := range tr.Counters {
		if c.Value < 0 || signedTraceCounters[c.Name] {
			m.Gauge(prefix + c.Name).Add(c.Value)
		} else {
			m.Counter(prefix + c.Name).Add(c.Value)
		}
	}
}

// Run builds the pipeline for sp and executes it on (c, g) — the
// one-call entry every consumer (public Compile, experiment harness,
// factory-placement search) drives compiles through.
func Run(c *circuit.Circuit, g *grid.Grid, sp Spec, opt RunOptions) (*Result, error) {
	p, err := NewPipeline(sp, opt)
	if err != nil {
		return nil, err
	}
	return p.Execute(c, g)
}

// The standard passes. Each is a plain value so pipeline definitions
// stay declarative and inspectable.
var (
	// passValidate rejects nil or structurally invalid inputs before
	// any rewriting happens.
	passValidate = Pass{Name: "validate", Run: func(st *State) error {
		if st.Input == nil {
			return fmt.Errorf("core: nil circuit")
		}
		if st.Grid == nil {
			return fmt.Errorf("core: nil grid")
		}
		if err := st.Input.Validate(); err != nil {
			return fmt.Errorf("core: invalid circuit: %w", err)
		}
		st.Count("gates", int64(len(st.Input.Gates)))
		return nil
	}}

	// passDecomposeSwaps rewrites explicit SWAP gates into CX triples so
	// the router only ever sees braidable two-qubit gates.
	passDecomposeSwaps = Pass{Name: "decompose-swaps", Run: func(st *State) error {
		st.Circuit = st.Input.DecomposeSWAPs()
		st.Count("gates", int64(len(st.Circuit.Gates)))
		return nil
	}}

	// passQCO applies the program-level commuting-CX optimization (§3.3).
	passQCO = Pass{Name: "qco", Run: func(st *State) error {
		before := st.Circuit.CXCount()
		st.Circuit = OptimizeProgram(st.Circuit)
		st.Count("gates", int64(len(st.Circuit.Gates)))
		st.Count("cx-delta", int64(st.Circuit.CXCount()-before))
		return nil
	}}

	// passAdoptWorking installs the session planner's precomputed working
	// circuit in place of the decompose-swaps and qco passes: the planner
	// already ran both transforms to find the replayable prefix, and they
	// are deterministic, so re-running them would only burn the time a
	// warm start exists to save.
	passAdoptWorking = Pass{Name: "adopt-working", Run: func(st *State) error {
		st.Circuit = st.cfg.Warm.Working
		st.Count("gates", int64(len(st.Circuit.Gates)))
		return nil
	}}

	// passCapacity fails fast when the grid has fewer usable tiles than
	// the circuit has program qubits.
	passCapacity = Pass{Name: "capacity", Run: func(st *State) error {
		have := st.Grid.Capacity()
		st.Count("capacity", int64(have))
		if have < st.Circuit.NumQubits {
			return &ErrInsufficientCapacity{
				Need: st.Circuit.NumQubits, Have: have, Grid: st.Grid.String(),
			}
		}
		return nil
	}}

	// passPlace produces the initial layout.
	passPlace = Pass{Name: "place", Run: func(st *State) error {
		st.Layout = st.cfg.Placement.Place(st.Circuit, st.Grid)
		st.Count("qubits", int64(st.Circuit.NumQubits))
		return nil
	}}

	// passPlaceWarm adopts the warm-start parent's initial layout instead
	// of running placement: the replayed prefix braided from exactly this
	// layout, so re-placing would invalidate every prefix path. The
	// layout must still be structurally valid for the (possibly
	// defect-degraded) grid — a program qubit on a newly dead tile means
	// the warm start is off the table.
	passPlaceWarm = Pass{Name: "place-warm", Run: func(st *State) error {
		warm := st.cfg.Warm
		if len(warm.Initial.QubitTile) < st.Circuit.NumQubits {
			return fmt.Errorf("core: %w: parent layout places %d qubits, circuit has %d",
				ErrWarmStart, len(warm.Initial.QubitTile), st.Circuit.NumQubits)
		}
		if err := warm.Initial.Validate(st.Grid); err != nil {
			return fmt.Errorf("core: %w: parent layout invalid on current grid: %v", ErrWarmStart, err)
		}
		st.Layout = warm.Initial.Clone()
		st.Count("qubits", int64(st.Circuit.NumQubits))
		st.Count("warm-prefix", int64(len(warm.Prefix)))
		return nil
	}}

	// passRoute is the Alg. 2 main loop: per-cycle ready-set collection,
	// gate ordering, braiding path-finding, and (when an adjuster is
	// configured) in-flight SWAP insertion.
	passRoute = Pass{Name: "route", Run: func(st *State) error {
		s, err := routeCircuit(st.Circuit, st.Grid, st.Layout, st.cfg)
		if err != nil {
			return err
		}
		st.Schedule = s
		braids := int64(braidCount(s))
		st.Count("cycles", int64(s.Latency()))
		st.Count("braids", braids)
		// Search-effort stats (A* pops, DFS stack pops), when the finder
		// tracks them: surfaced both as trace counters and, with a
		// registry attached, as routing-layer totals.
		var stats route.SearchStats
		if sr, ok := st.cfg.Finder.(route.StatsReporter); ok {
			stats = sr.Stats()
			st.Count("search-pops", stats.Pops)
			st.Count("searches", stats.Searches)
		}
		if m := st.cfg.Metrics; m != nil {
			m.Counter("route/braids-routed").Add(braids)
			m.Counter("route/cycles").Add(int64(s.Latency()))
			m.Counter("route/search-pops").Add(stats.Pops)
			m.Counter("route/searches").Add(stats.Searches)
		}
		return nil
	}}

	// passRouteParallel is the parallel Alg. 2 variant: per cycle, the
	// independent braids of the dependency layer are speculated by a
	// worker pool against a shared occupancy snapshot (with free-component
	// pruning and windowed-lookahead tie-breaking) and committed in the
	// deterministic ordered-ready sequence, retrying conflicts in further
	// rounds. Emits the same route counters as passRoute plus the
	// parallel-engine contention stats.
	passRouteParallel = Pass{Name: "route-parallel", Run: func(st *State) error {
		var pr parallelRouter
		s, err := pr.route(st.Circuit, st.Grid, st.Layout, st.cfg)
		if err != nil {
			return err
		}
		st.Schedule = s
		braids := int64(braidCount(s))
		st.Count("cycles", int64(s.Latency()))
		st.Count("braids", braids)
		var stats route.SearchStats
		for _, f := range pr.finders {
			fs := f.Stats()
			stats.Pops += fs.Pops
			stats.Searches += fs.Searches
		}
		st.Count("search-pops", stats.Pops)
		st.Count("searches", stats.Searches)
		st.Count("workers", int64(pr.workers))
		st.Count("conflicts", pr.stats.Conflicts)
		st.Count("retries", pr.stats.Retries)
		st.Count("stall-cycles", pr.stats.StallCycles)
		if m := st.cfg.Metrics; m != nil {
			m.Counter("route/braids-routed").Add(braids)
			m.Counter("route/cycles").Add(int64(s.Latency()))
			m.Counter("route/search-pops").Add(stats.Pops)
			m.Counter("route/searches").Add(stats.Searches)
			m.Gauge("route/parallel/workers").Set(int64(pr.workers))
			m.Counter("route/parallel/conflicts").Add(pr.stats.Conflicts)
			m.Counter("route/parallel/retries").Add(pr.stats.Retries)
			m.Counter("route/parallel/stall-cycles").Add(pr.stats.StallCycles)
		}
		return nil
	}}

	// passAdjust reconciles the layout adjustment that ran interleaved
	// with routing: the inserted-SWAP braids are already in the
	// schedule (Alg. 2 executes them between cycles), so this stage
	// accounts for their cost — the overhead Table 1 charges the
	// AutoBraid baseline for.
	passAdjust = Pass{Name: "adjust", Run: func(st *State) error {
		st.Count("swap-braids", int64(st.Schedule.InsertedBraids()))
		return nil
	}}

	// passCompact hoists braids into earlier cycles where dependencies
	// and occupancy allow (no-op on schedules with inserted SWAPs).
	passCompact = Pass{Name: "compact", Run: func(st *State) error {
		before := st.Schedule.Latency()
		compacted := CompactSchedule(st.Schedule, st.Circuit, st.cfg.Finder)
		st.Count("cycles-saved", int64(before-compacted.Latency()))
		st.Count("braids-hoisted", int64(hoistedBraids(st.Schedule, compacted)))
		st.Schedule = compacted
		return nil
	}}

	// passFinalizeMetrics derives Latency, PathLen and ResUtil (Eq. 1)
	// from the final schedule — the single place these metrics are
	// computed, whatever passes ran before it.
	passFinalizeMetrics = Pass{Name: "finalize-metrics", Run: func(st *State) error {
		res := st.Result
		res.Schedule = st.Schedule
		res.Circuit = st.Circuit
		res.Grid = st.Grid
		res.Latency = st.Schedule.Latency()
		res.PathLen = st.Schedule.TotalPathLength()
		if res.Latency > 0 {
			res.ResUtil = float64(res.PathLen) / (float64(st.Grid.Tiles()) * float64(res.Latency))
		} else {
			res.ResUtil = 0
		}
		if st.cfg.Warm != nil {
			res.WarmCycles = len(st.cfg.Warm.Prefix)
		}
		st.Count("latency", int64(res.Latency))
		st.Count("pathlen", int64(res.PathLen))
		return nil
	}}
)

// braidCount counts the braids of every layer.
func braidCount(s *sched.Schedule) int {
	n := 0
	for _, l := range s.Layers {
		n += len(l)
	}
	return n
}

// hoistedBraids counts the gates whose cycle changed between the
// pre-compaction and post-compaction schedules.
func hoistedBraids(before, after *sched.Schedule) int {
	layerOf := map[int]int{}
	for li, l := range before.Layers {
		for _, b := range l {
			if b.Gate >= 0 {
				layerOf[b.Gate] = li
			}
		}
	}
	moved := 0
	for li, l := range after.Layers {
		for _, b := range l {
			if b.Gate >= 0 && layerOf[b.Gate] != li {
				moved++
			}
		}
	}
	return moved
}
