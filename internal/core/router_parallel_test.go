package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hilight/internal/bench"
	"hilight/internal/circuit"
	"hilight/internal/grid"
	"hilight/internal/obs"
	"hilight/internal/sched"
)

// parSpec is the anonymous parallel-route spec the tests drive, with an
// explicit worker count override per call site.
func parSpec(workers int) Spec {
	return Spec{
		Placement: "hilight", Ordering: "proposed", Finder: "astar-closest",
		RouteWorkers: workers, Lookahead: 4,
	}
}

func encodeSchedule(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	data, err := sched.EncodeJSON(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelRouteDeterministicAcrossWorkers pins the tentpole
// guarantee: the worker count selects who computes, never what — the
// encoded schedule is byte-identical for every pool size.
func TestParallelRouteDeterministicAcrossWorkers(t *testing.T) {
	c := bench.QFT(24)
	g := grid.Rect(24)
	var want []byte
	for _, workers := range []int{1, 2, 3, 8} {
		res, err := Run(c, g, parSpec(workers), RunOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Schedule.Validate(res.Circuit); err != nil {
			t.Fatalf("workers=%d: invalid schedule: %v", workers, err)
		}
		enc := encodeSchedule(t, res.Schedule)
		if want == nil {
			want = enc
		} else if !bytes.Equal(want, enc) {
			t.Fatalf("workers=%d: schedule differs from workers=1", workers)
		}
	}
}

// TestParallelRouteEquivalentToSequential proves schedule equivalence:
// the parallel pass may pick different (equally legal) paths and layer
// packings than the sequential Alg. 2 loop, but it must execute exactly
// the same two-qubit gate set under all of Validate's replay invariants,
// on the same initial layout.
func TestParallelRouteEquivalentToSequential(t *testing.T) {
	c := bench.QFT(16)
	g := grid.Rect(16)
	seq, err := Run(c, g, MustMethod("hilight-map"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(c, g, parSpec(4), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Schedule.Validate(par.Circuit); err != nil {
		t.Fatalf("parallel schedule invalid: %v", err)
	}
	for q, tile := range seq.Schedule.Initial.QubitTile {
		if par.Schedule.Initial.QubitTile[q] != tile {
			t.Fatalf("parallel pass changed the initial layout: qubit %d on tile %d, want %d",
				q, par.Schedule.Initial.QubitTile[q], tile)
		}
	}
	gates := func(s *sched.Schedule) map[int]bool {
		m := map[int]bool{}
		for _, l := range s.Layers {
			for _, b := range l {
				if b.Gate >= 0 {
					m[b.Gate] = true
				}
			}
		}
		return m
	}
	sg, pg := gates(seq.Schedule), gates(par.Schedule)
	if len(sg) != len(pg) {
		t.Fatalf("gate sets differ: sequential %d, parallel %d", len(sg), len(pg))
	}
	for gate := range sg {
		if !pg[gate] {
			t.Fatalf("gate %d routed sequentially but missing from parallel schedule", gate)
		}
	}
}

// contentionFixture builds an 8x2 grid whose routing lattice is cut at
// vertex column x=4 except for the bottom-row vertex (4,2), plus four
// CX gates that all have to cross that one gap — the pathological
// all-braids-through-one-channel contention case. With full=true the gap
// is closed too, disconnecting the halves entirely.
func contentionFixture(t *testing.T, full bool) (*circuit.Circuit, *grid.Grid) {
	t.Helper()
	g := grid.New(8, 2)
	d := &grid.DefectMap{Vertices: []int{g.VertexID(4, 0), g.VertexID(4, 1)}}
	if full {
		d.Vertices = append(d.Vertices, g.VertexID(4, 2))
	}
	if err := g.ApplyDefects(d); err != nil {
		t.Fatal(err)
	}
	c := circuit.New("contention", 8)
	for q := 0; q < 4; q++ {
		c.Add2(circuit.CX, q, q+4)
	}
	return c, g
}

// contentionSpec places qubit q on tile q (left operands at x=0..3,
// right operands at x=4..7), so every braid crosses the x=4 cut.
func contentionSpec(workers int) Spec {
	sp := parSpec(workers)
	sp.Placement = "identity"
	return sp
}

// TestParallelRouteStarvationGuard fault-injects pathological contention
// and asserts the commit loop still makes progress: the first candidate
// in commit order with a speculated path always commits (it cannot
// conflict with an unchanged occupancy), so every cycle routes at least
// one braid and every gate eventually executes.
func TestParallelRouteStarvationGuard(t *testing.T) {
	c, g := contentionFixture(t, false)
	res, err := Run(c, g, contentionSpec(4), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("invalid schedule under contention: %v", err)
	}
	// One open vertex means one crossing braid per cycle: four gates need
	// four cycles, and each layer stays within the disjointness invariant
	// (re-proved by Validate above).
	if res.Latency != 4 {
		t.Errorf("latency = %d, want 4 (one crossing per cycle)", res.Latency)
	}
}

// TestParallelRouteUnroutableTaxonomy closes the gap entirely and checks
// the parallel pass reports the same typed ErrUnroutable, with the same
// reason wording, as the sequential router.
func TestParallelRouteUnroutableTaxonomy(t *testing.T) {
	c, g := contentionFixture(t, true)
	_, parErr := Run(c, g, contentionSpec(4), RunOptions{})
	seqSp := contentionSpec(0) // RouteWorkers=0 keeps the sequential pass
	_, seqErr := Run(c, g, seqSp, RunOptions{})
	for name, err := range map[string]error{"parallel": parErr, "sequential": seqErr} {
		var unroutable *ErrUnroutable
		if !errors.As(err, &unroutable) {
			t.Fatalf("%s: got %v, want ErrUnroutable", name, err)
		}
		if unroutable.Gate < 0 {
			t.Errorf("%s: ErrUnroutable does not identify the stuck gate", name)
		}
		if !strings.Contains(unroutable.Reason, "empty lattice") {
			t.Errorf("%s: reason %q lost the empty-lattice taxonomy", name, unroutable.Reason)
		}
	}
	if parErr.Error() != seqErr.Error() {
		t.Errorf("error taxonomy diverged:\n  parallel:   %v\n  sequential: %v", parErr, seqErr)
	}
}

// TestParallelRouteTraceAndMetricsReconcile checks the observability
// contract: the route-parallel stage's trace counters and the
// route/parallel/... registry metrics report the same engine, and the
// shared route/... totals match the trace exactly for a single compile.
func TestParallelRouteTraceAndMetricsReconcile(t *testing.T) {
	c := bench.QFT(16)
	g := grid.Rect(16)
	reg := obs.NewRegistry()
	res, err := Run(c, g, parSpec(2), RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var stage *StageTrace
	for i := range res.Trace {
		if res.Trace[i].Stage == "route-parallel" {
			stage = &res.Trace[i]
		}
	}
	if stage == nil {
		t.Fatalf("no route-parallel stage in trace: %+v", res.Trace)
	}
	workers, ok := stage.Counter("workers")
	if !ok || workers != 2 {
		t.Errorf("trace workers = %d (ok=%v), want 2", workers, ok)
	}
	for trace, metric := range map[string]string{
		"workers":      "route/parallel/workers",
		"conflicts":    "route/parallel/conflicts",
		"retries":      "route/parallel/retries",
		"stall-cycles": "route/parallel/stall-cycles",
		"braids":       "route/braids-routed",
		"cycles":       "route/cycles",
		"search-pops":  "route/search-pops",
		"searches":     "route/searches",
	} {
		want, ok := stage.Counter(trace)
		if !ok {
			t.Errorf("trace counter %q missing", trace)
			continue
		}
		var got int64
		if trace == "workers" {
			got = reg.Gauge(metric).Value()
		} else {
			got = reg.Counter(metric).Value()
		}
		if got != want {
			t.Errorf("metric %s = %d, trace %s = %d — not reconciled", metric, got, trace, want)
		}
	}
}

// TestParallelFallsBackForIncompatibleSpecs pins the safety property
// that makes a server-wide worker default harmless: specs with a layout
// adjuster or a non-A*-family finder silently keep the sequential route
// pass.
func TestParallelFallsBackForIncompatibleSpecs(t *testing.T) {
	cases := map[string]struct {
		sp  Spec
		opt RunOptions
	}{
		"adjuster": {sp: parSpec(4), opt: RunOptions{Adjuster: &swapHappyAdjuster{}}},
		"finder":   {sp: Spec{Placement: "hilight", Finder: "l-shape", RouteWorkers: 4}},
	}
	for name, tc := range cases {
		p, err := NewPipeline(tc.sp, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, pass := range p.Passes {
			if pass.Name == "route-parallel" {
				t.Errorf("%s: incompatible spec selected the parallel route pass", name)
			}
		}
	}
	// And the compatible spec does select it.
	p, err := NewPipeline(parSpec(4), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pass := range p.Passes {
		found = found || pass.Name == "route-parallel"
	}
	if !found {
		t.Error("compatible spec did not select the parallel route pass")
	}
}
