package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"hilight/internal/grid"
)

func passNames(p *Pipeline) []string {
	names := make([]string, len(p.Passes))
	for i, pass := range p.Passes {
		names[i] = pass.Name
	}
	return names
}

func TestPipelinePassAssembly(t *testing.T) {
	cases := []struct {
		name string
		sp   Spec
		opt  RunOptions
		want string
	}{
		{"plain", MustMethod("hilight-map"), RunOptions{},
			"validate decompose-swaps capacity place route finalize-metrics"},
		{"qco", MustMethod("hilight-pg"), RunOptions{},
			"validate decompose-swaps qco capacity place route finalize-metrics"},
		{"compact", MustMethod("hilight-map"), RunOptions{Compact: true},
			"validate decompose-swaps capacity place route compact finalize-metrics"},
		{"adjuster", MustMethod("hilight-map"), RunOptions{Adjuster: &swapHappyAdjuster{}},
			"validate decompose-swaps capacity place route adjust finalize-metrics"},
		{"everything", MustMethod("hilight-pg"), RunOptions{Compact: true, Adjuster: &swapHappyAdjuster{}},
			"validate decompose-swaps qco capacity place route adjust compact finalize-metrics"},
	}
	for _, tc := range cases {
		p, err := NewPipeline(tc.sp, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := strings.Join(passNames(p), " "); got != tc.want {
			t.Errorf("%s passes:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}

// Every registered method must produce a fully-populated trace whose
// stage durations account for (at most) the measured runtime.
func TestTracePopulatedForAllMethods(t *testing.T) {
	c := qftCircuit(8)
	g := grid.Rect(8)
	for _, name := range MethodNames() {
		sp := MustMethod(name)
		if sp.Method != name {
			t.Errorf("MustMethod(%q).Method = %q", name, sp.Method)
		}
		res, err := Run(c, g, sp, RunOptions{Rng: rand.New(rand.NewSource(1))})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Method != name {
			t.Errorf("%s: Result.Method = %q", name, res.Method)
		}
		if len(res.Trace) < 6 {
			t.Fatalf("%s: trace has %d stages", name, len(res.Trace))
		}
		if first := res.Trace[0].Stage; first != "validate" {
			t.Errorf("%s: first stage %q", name, first)
		}
		if last := res.Trace[len(res.Trace)-1].Stage; last != "finalize-metrics" {
			t.Errorf("%s: last stage %q", name, last)
		}
		var sum time.Duration
		for _, st := range res.Trace {
			if st.Duration < 0 {
				t.Errorf("%s/%s: negative duration %v", name, st.Stage, st.Duration)
			}
			sum += st.Duration
		}
		if sum > res.Runtime {
			t.Errorf("%s: stage durations %v exceed runtime %v", name, sum, res.Runtime)
		}
	}
}

func traceStage(t *testing.T, res *Result, stage string) StageTrace {
	t.Helper()
	for _, st := range res.Trace {
		if st.Stage == stage {
			return st
		}
	}
	t.Fatalf("stage %q missing from trace %v", stage, res.Trace)
	return StageTrace{}
}

func TestTraceCountersMatchResult(t *testing.T) {
	c := qftCircuit(10)
	g := grid.Rect(10)
	res, err := Run(c, g, MustMethod("hilight-map"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cycles, ok := traceStage(t, res, "route").Counter("cycles"); !ok || cycles != int64(res.Latency) {
		t.Errorf("route cycles counter = %d (ok=%v), latency %d", cycles, ok, res.Latency)
	}
	fin := traceStage(t, res, "finalize-metrics")
	if v, ok := fin.Counter("latency"); !ok || v != int64(res.Latency) {
		t.Errorf("finalize latency counter = %d (ok=%v), want %d", v, ok, res.Latency)
	}
	if v, ok := fin.Counter("pathlen"); !ok || v != int64(res.PathLen) {
		t.Errorf("finalize pathlen counter = %d (ok=%v), want %d", v, ok, res.PathLen)
	}
	if _, ok := fin.Counter("no-such-counter"); ok {
		t.Error("Counter returned ok for an unrecorded name")
	}
}

// The compact pass inside the pipeline must behave exactly like the
// standalone CompactSchedule: metrics describe the compacted schedule
// and latency never rises.
func TestPipelineCompactPass(t *testing.T) {
	c := qftCircuit(25)
	g := grid.Rect(25)
	sp := MustMethod("hilight-map")
	sp.Finder = "l-shape" // bubble-rich schedules leave compaction work
	plain, err := Run(c, g, sp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Run(c, g, sp, RunOptions{Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Latency > plain.Latency {
		t.Errorf("compaction raised latency %d -> %d", plain.Latency, compacted.Latency)
	}
	if compacted.Latency != compacted.Schedule.Latency() {
		t.Errorf("Result.Latency %d != schedule latency %d (metrics not finalized after compact)",
			compacted.Latency, compacted.Schedule.Latency())
	}
	saved, ok := traceStage(t, compacted, "compact").Counter("cycles-saved")
	if !ok {
		t.Fatal("compact stage has no cycles-saved counter")
	}
	if int(saved) != plain.Latency-compacted.Latency {
		t.Errorf("cycles-saved = %d, want %d", saved, plain.Latency-compacted.Latency)
	}
}

func TestRunRejectsUnknownComponents(t *testing.T) {
	c := qftCircuit(4)
	g := grid.Square(4)
	for _, tc := range []struct {
		sp   Spec
		frag string
	}{
		{Spec{Placement: "nope"}, "unknown placement"},
		{Spec{Ordering: "nope"}, "unknown ordering"},
		{Spec{Finder: "nope"}, "unknown finder"},
		{Spec{Adjuster: "nope"}, "unknown adjuster"},
	} {
		_, err := Run(c, g, tc.sp, RunOptions{})
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("spec %+v: err = %v, want %q", tc.sp, err, tc.frag)
		}
	}
}

func TestMethodRegistry(t *testing.T) {
	names := MethodNames()
	if len(names) == 0 {
		t.Fatal("no registered methods")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("MethodNames not sorted: %v", names)
		}
	}
	for _, want := range []string{"hilight", "hilight-map", "hilight-pg", "baseline"} {
		if _, ok := LookupMethod(want); !ok {
			t.Errorf("method %q not registered", want)
		}
	}
	if _, ok := LookupMethod("no-such-method"); ok {
		t.Error("LookupMethod found a method that was never registered")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterMethod did not panic")
		}
	}()
	RegisterMethod("hilight", Spec{})
}

func TestMustMethodPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMethod on an unknown name did not panic")
		}
	}()
	MustMethod("no-such-method")
}
