package magic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hilight/internal/circuit"
	"hilight/internal/core"
	"hilight/internal/grid"
)

// tCircuit builds a circuit interleaving CX braids with nT T gates after
// each braid on the control qubit.
func tCircuit(braids, nT int) *circuit.Circuit {
	c := circuit.New("t", 4)
	for i := 0; i < braids; i++ {
		c.Add2(circuit.CX, 0, 1)
		for k := 0; k < nT; k++ {
			c.Add1(circuit.T, 0)
		}
		c.Add2(circuit.CX, 2, 3)
	}
	return c
}

func mapIt(t *testing.T, c *circuit.Circuit) *core.Result {
	t.Helper()
	res, err := core.Run(c, grid.Square(c.NumQubits), core.MustMethod("hilight-map"), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDemandProfile(t *testing.T) {
	c := circuit.New("d", 3)
	c.Add1(circuit.T, 0)     // before any braid: cycle 0
	c.Add2(circuit.CX, 0, 1) // layer 0
	c.Add1(circuit.T, 0)     // after layer 0: cycle 1
	c.Add1(circuit.Tdg, 1)   // after layer 0: cycle 1
	c.Add1(circuit.T, 2)     // qubit 2 never braids: cycle 0
	res := mapIt(t, c)
	d := DemandOf(res.Circuit, res.Schedule)
	if d.Total() != 4 {
		t.Fatalf("total = %d, want 4", d.Total())
	}
	if d[0] != 2 {
		t.Errorf("cycle-0 demand = %d, want 2", d[0])
	}
	if d[1] != 2 {
		t.Errorf("cycle-1 demand = %d, want 2", d[1])
	}
	if d.Peak() != 2 {
		t.Errorf("peak = %d", d.Peak())
	}
}

func TestAnalyzeNoTGatesNoStalls(t *testing.T) {
	c := circuit.New("cx", 2)
	c.Add2(circuit.CX, 0, 1)
	res := mapIt(t, c)
	rep, err := Analyze(res.Circuit, res.Schedule, DefaultFactory())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TCount != 0 || rep.StallCycles != 0 {
		t.Errorf("unexpected T accounting: %+v", rep)
	}
	if rep.TotalLatency != rep.BraidLatency {
		t.Error("latency changed without T gates")
	}
}

func TestAnalyzeStallsWhenFactorySlow(t *testing.T) {
	// 6 braids, 2 T gates after each: demand 2 per cycle; a factory
	// producing 1 state per 10 cycles must stall heavily.
	c := tCircuit(6, 2)
	res := mapIt(t, c)
	slow := Factory{Count: 1, Period: 10, Buffer: 4, Initial: 2}
	rep, err := Analyze(res.Circuit, res.Schedule, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StallCycles == 0 {
		t.Fatal("slow factory never stalled")
	}
	fast := Factory{Count: 4, Period: 2, Buffer: 16, Initial: 16}
	repFast, err := Analyze(res.Circuit, res.Schedule, fast)
	if err != nil {
		t.Fatal(err)
	}
	if repFast.StallCycles >= rep.StallCycles {
		t.Errorf("faster factory stalled more: %d vs %d", repFast.StallCycles, rep.StallCycles)
	}
	if rep.TCount != 12 || repFast.TCount != 12 {
		t.Errorf("T counts: %d, %d", rep.TCount, repFast.TCount)
	}
}

func TestAnalyzeBufferTooSmall(t *testing.T) {
	c := circuit.New("burst", 2)
	for i := 0; i < 5; i++ {
		c.Add1(circuit.T, 0) // five states demanded at cycle 0
	}
	c.Add2(circuit.CX, 0, 1)
	res := mapIt(t, c)
	// A buffer smaller than the burst just stalls more: states are
	// consumed incrementally as they distill.
	tiny := Factory{Count: 1, Period: 2, Buffer: 2, Initial: 0}
	repTiny, err := Analyze(res.Circuit, res.Schedule, tiny)
	if err != nil {
		t.Fatal(err)
	}
	big := Factory{Count: 1, Period: 2, Buffer: 8, Initial: 8}
	rep, err := Analyze(res.Circuit, res.Schedule, big)
	if err != nil {
		t.Fatal(err)
	}
	if repTiny.StallCycles == 0 {
		t.Error("cold-start burst should stall")
	}
	if rep.StallCycles >= repTiny.StallCycles {
		t.Errorf("pre-banked factory stalled as much: %d vs %d", rep.StallCycles, repTiny.StallCycles)
	}
}

func TestAnalyzeValidatesFactory(t *testing.T) {
	c := tCircuit(1, 1)
	res := mapIt(t, c)
	bad := []Factory{
		{Count: 0, Period: 1, Buffer: 1},
		{Count: 1, Period: 0, Buffer: 1},
		{Count: 1, Period: 1, Buffer: 0},
		{Count: 1, Period: 1, Buffer: 2, Initial: 3},
	}
	for i, f := range bad {
		if _, err := Analyze(res.Circuit, res.Schedule, f); err == nil {
			t.Errorf("factory %d accepted: %+v", i, f)
		}
	}
}

func TestFactoriesNeeded(t *testing.T) {
	c := tCircuit(8, 2)
	res := mapIt(t, c)
	unit := Factory{Count: 1, Period: 8, Buffer: 4, Initial: 2}
	k, err := FactoriesNeeded(res.Circuit, res.Schedule, unit, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if k < 2 {
		t.Errorf("one slow unit should not suffice, got k=%d", k)
	}
	// The returned count must actually be stall-free.
	f := unit
	f.Count = k
	f.Buffer = unit.Buffer * k
	f.Initial = unit.Initial * k
	rep, err := Analyze(res.Circuit, res.Schedule, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StallCycles != 0 {
		t.Errorf("k=%d still stalls %d cycles", k, rep.StallCycles)
	}
	// And k-1 must not be (minimality).
	if k > 1 {
		f.Count = k - 1
		f.Buffer = unit.Buffer * (k - 1)
		f.Initial = unit.Initial * (k - 1)
		rep, err := Analyze(res.Circuit, res.Schedule, f)
		if err == nil && rep.StallCycles == 0 {
			t.Errorf("k-1=%d already stall-free; k not minimal", k-1)
		}
	}
}

func TestFactoriesNeededImpossible(t *testing.T) {
	c := tCircuit(2, 3)
	res := mapIt(t, c)
	unit := Factory{Count: 1, Period: 50, Buffer: 1, Initial: 0}
	if _, err := FactoriesNeeded(res.Circuit, res.Schedule, unit, 0, 2); err == nil {
		t.Error("impossible sizing accepted")
	}
}

// Property: more factory units never increase stalls; demand totals match
// the circuit's T count.
func TestMonotoneFactoryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.New("rand", 4)
		tCount := 0
		for i := 0; i < 20; i++ {
			if rng.Intn(2) == 0 {
				c.Add1(circuit.T, rng.Intn(4))
				tCount++
			} else {
				a, b := rng.Intn(4), rng.Intn(4)
				if a != b {
					c.Add2(circuit.CX, a, b)
				}
			}
		}
		res, err := core.Run(c, grid.Square(4), core.MustMethod("hilight-map"), core.RunOptions{})
		if err != nil || res.Schedule.Validate(res.Circuit) != nil {
			return false
		}
		if DemandOf(res.Circuit, res.Schedule).Total() != tCount {
			return false
		}
		prev := -1
		for count := 1; count <= 4; count++ {
			fac := Factory{Count: count, Period: 6, Buffer: 8 * count, Initial: 4 * count}
			rep, err := Analyze(res.Circuit, res.Schedule, fac)
			if err != nil {
				return false
			}
			if prev >= 0 && rep.StallCycles > prev {
				return false
			}
			prev = rep.StallCycles
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
