// Package magic models magic-state consumption — the paper's stated
// future-work direction (§6: "further optimization opportunities, such as
// those for single-qubit gates and the magic-state factory").
//
// In the double-defect surface code, T and T† gates are executed by
// consuming a distilled magic state from the factory (Bravyi–Kitaev
// distillation). The mapper treats single-qubit gates as free, which is
// accurate only while the factory keeps up: if the braiding schedule
// demands T states faster than distillation produces them, the machine
// stalls. This package overlays a factory throughput model on a braiding
// schedule and reports the stall-adjusted latency, and sizes the factory
// count needed to keep a schedule stall-free.
package magic

import (
	"fmt"

	"hilight/internal/circuit"
	"hilight/internal/sched"
)

// Factory describes the distillation pipeline feeding the computation.
type Factory struct {
	// Count is the number of parallel distillation units (≥ 1).
	Count int
	// Period is the number of braiding cycles one unit needs to distill
	// one magic state (≥ 1). A 15-to-1 Reed–Muller round is on the order
	// of 10 code cycles; the default used by DefaultFactory is 10.
	Period int
	// Buffer is the maximum number of distilled states that can be
	// stored awaiting consumption (≥ 1).
	Buffer int
	// Initial is the number of states banked before cycle 0 (≤ Buffer).
	Initial int
}

// DefaultFactory returns a single 15-to-1-style unit: one state per 10
// cycles, buffer of 4, starting full.
func DefaultFactory() Factory {
	return Factory{Count: 1, Period: 10, Buffer: 4, Initial: 4}
}

func (f Factory) validate() error {
	if f.Count < 1 || f.Period < 1 || f.Buffer < 1 {
		return fmt.Errorf("magic: factory %+v has non-positive parameters", f)
	}
	if f.Initial < 0 || f.Initial > f.Buffer {
		return fmt.Errorf("magic: initial bank %d outside [0,%d]", f.Initial, f.Buffer)
	}
	return nil
}

// Demand is the per-braiding-cycle magic-state demand of a schedule:
// Demand[i] counts the T/T† gates that become executable right before
// cycle i (their predecessors on the qubit have all run by cycle i−1).
// Index len(schedule layers) collects the trailing T gates after the last
// braid.
type Demand []int

// Total returns the total T count.
func (d Demand) Total() int {
	t := 0
	for _, v := range d {
		t += v
	}
	return t
}

// Peak returns the largest single-cycle demand.
func (d Demand) Peak() int {
	p := 0
	for _, v := range d {
		if v > p {
			p = v
		}
	}
	return p
}

// DemandOf computes the magic-state demand profile of a circuit under a
// schedule. Each T/T† gate is charged to the cycle after the last braid
// that precedes it on its qubit (cycle 0 when none). The schedule must
// execute exactly the given circuit (use Schedule.Validate first).
func DemandOf(c *circuit.Circuit, s *sched.Schedule) Demand {
	// Layer of each executed two-qubit gate.
	layerOf := map[int]int{}
	for li, layer := range s.Layers {
		for _, b := range layer {
			if b.Gate >= 0 {
				layerOf[b.Gate] = li
			}
		}
	}
	d := make(Demand, len(s.Layers)+1)
	lastBraidLayer := make([]int, c.NumQubits) // layer of the most recent 2Q gate per qubit, -1 none
	for q := range lastBraidLayer {
		lastBraidLayer[q] = -1
	}
	for gi, g := range c.Gates {
		if g.TwoQubit() {
			if l, ok := layerOf[gi]; ok {
				lastBraidLayer[g.Q0] = l
				lastBraidLayer[g.Q1] = l
			}
			continue
		}
		if g.Kind != circuit.T && g.Kind != circuit.Tdg {
			continue
		}
		cycle := lastBraidLayer[g.Q0] + 1
		d[cycle]++
	}
	return d
}

// Report summarizes a factory-throughput analysis.
type Report struct {
	TCount       int // total magic states consumed
	BraidLatency int // schedule latency without factory stalls
	StallCycles  int // extra cycles waiting for distillation
	TotalLatency int // BraidLatency + StallCycles
	PeakDemand   int // largest single-cycle T demand
	FinalBank    int // states left over at the end
	// Utilization is consumed states over produced-plus-initial states:
	// low values mean the factory is oversized.
	Utilization float64
}

// Analyze simulates the factory against the demand profile of (c, s):
// production accrues every cycle (Count states per Period, modelled as
// one unit finishing every Period/Count cycles aggregated per cycle),
// capped by Buffer; when a cycle's demand exceeds the bank, the machine
// stalls — braiding pauses while distillation catches up.
func Analyze(c *circuit.Circuit, s *sched.Schedule, f Factory) (Report, error) {
	if err := f.validate(); err != nil {
		return Report{}, err
	}
	demand := DemandOf(c, s)
	rep := Report{
		TCount:       demand.Total(),
		BraidLatency: s.Latency(),
		PeakDemand:   demand.Peak(),
	}
	bank := f.Initial
	produced := f.Initial
	// Token-bucket production: Count units each finishing every Period
	// cycles yield Count/Period states per cycle in aggregate, realized
	// whenever the accumulated progress crosses a whole Period. Cumulative
	// production after t cycles is floor(t·Count/Period), which is
	// pointwise monotone in Count — adding factory units never produces
	// later.
	progress := 0
	tick := func() {
		progress += f.Count
		for progress >= f.Period {
			progress -= f.Period
			if bank < f.Buffer {
				bank++
				produced++
			}
		}
	}
	for cycle := 0; cycle < len(demand); cycle++ {
		// A cycle's T gates drain the bank as states become available;
		// braiding stalls until the whole batch is served (the gates
		// themselves are latency-free once fed).
		need := demand[cycle]
		for need > 0 {
			take := bank
			if take > need {
				take = need
			}
			bank -= take
			need -= take
			if need > 0 {
				rep.StallCycles++
				tick()
			}
		}
		if cycle < len(demand)-1 {
			// The braiding cycle itself takes one machine cycle.
			tick()
		}
	}
	rep.TotalLatency = rep.BraidLatency + rep.StallCycles
	rep.FinalBank = bank
	if produced > 0 {
		rep.Utilization = float64(rep.TCount) / float64(produced)
	}
	return rep, nil
}

// FactoriesNeeded returns the smallest factory Count (with the given
// per-unit Period and Buffer scaled by the count) that keeps stall cycles
// within maxStall for the schedule. It returns an error if even maxUnits
// units cannot satisfy the peak demand.
func FactoriesNeeded(c *circuit.Circuit, s *sched.Schedule, unit Factory, maxStall, maxUnits int) (int, error) {
	if err := unit.validate(); err != nil {
		return 0, err
	}
	for count := 1; count <= maxUnits; count++ {
		f := unit
		f.Count = count
		f.Buffer = unit.Buffer * count
		f.Initial = unit.Initial * count
		rep, err := Analyze(c, s, f)
		if err != nil {
			continue // buffer too small for the peak; more units may fix it
		}
		if rep.StallCycles <= maxStall {
			return count, nil
		}
	}
	return 0, fmt.Errorf("magic: %d units cannot keep stalls under %d", maxUnits, maxStall)
}
