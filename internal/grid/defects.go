package grid

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DefectMap describes fabrication defects of a grid: dead tiles (cannot
// host a program qubit), dead routing vertices (no braid may pass
// through), and broken routing channels. It is the serializable form;
// ApplyDefects folds it into a Grid.
type DefectMap struct {
	Tiles    []int    `json:"tiles,omitempty"`
	Vertices []int    `json:"vertices,omitempty"`
	Channels [][2]int `json:"channels,omitempty"` // adjacent vertex-id pairs
}

// Empty reports whether the map disables nothing.
func (d *DefectMap) Empty() bool {
	return d == nil || (len(d.Tiles) == 0 && len(d.Vertices) == 0 && len(d.Channels) == 0)
}

// Validate checks every entry against g's geometry: tile and vertex ids in
// range, channel endpoints adjacent lattice vertices. It returns the first
// problem or nil.
func (d *DefectMap) Validate(g *Grid) error {
	if d == nil {
		return nil
	}
	for _, t := range d.Tiles {
		if t < 0 || t >= g.Tiles() {
			return fmt.Errorf("grid: defect tile %d out of range for %dx%d", t, g.W, g.H)
		}
	}
	for _, v := range d.Vertices {
		if v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("grid: defect vertex %d out of range", v)
		}
	}
	for _, ch := range d.Channels {
		u, v := ch[0], ch[1]
		if u < 0 || u >= g.NumVertices() || v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("grid: defect channel %d-%d out of range", u, v)
		}
		if g.VertexDist(u, v) != 1 {
			return fmt.Errorf("grid: defect channel %d-%d endpoints not adjacent", u, v)
		}
	}
	return nil
}

// EncodeDefects serializes a defect map as JSON.
func EncodeDefects(d *DefectMap) ([]byte, error) {
	if d == nil {
		d = &DefectMap{}
	}
	return json.MarshalIndent(d, "", "  ")
}

// DecodeDefects parses EncodeDefects output. The result still needs
// Validate (or ApplyDefects, which validates) against the target grid.
func DecodeDefects(data []byte) (*DefectMap, error) {
	var d DefectMap
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("grid: defect map: %w", err)
	}
	return &d, nil
}

// defectState is a Grid's fault annotation; nil on a pristine grid so the
// hot-path predicates stay a nil check.
type defectState struct {
	tile   []bool
	vertex []bool
	edge   []bool // by EdgeID
}

// ApplyDefects validates d and marks its tiles, vertices and channels
// defective on g. Applying several maps accumulates.
func (g *Grid) ApplyDefects(d *DefectMap) error {
	if err := d.Validate(g); err != nil {
		return err
	}
	if d.Empty() {
		return nil
	}
	g.ensureDefects()
	for _, t := range d.Tiles {
		g.def.tile[t] = true
	}
	for _, v := range d.Vertices {
		g.def.vertex[v] = true
	}
	for _, ch := range d.Channels {
		g.def.edge[g.EdgeID(ch[0], ch[1])] = true
	}
	return nil
}

func (g *Grid) ensureDefects() {
	if g.def == nil {
		g.def = &defectState{
			tile:   make([]bool, g.Tiles()),
			vertex: make([]bool, g.NumVertices()),
			edge:   make([]bool, g.NumEdges()),
		}
	}
}

// DisableTile marks tile t as a fabrication defect: it can never host a
// program qubit. Its boundary routing channels stay open unless disabled
// separately.
func (g *Grid) DisableTile(t int) {
	g.ensureDefects()
	g.def.tile[t] = true
}

// DisableVertex marks routing vertex v dead: no braid may start, end, or
// pass through it.
func (g *Grid) DisableVertex(v int) {
	g.ensureDefects()
	g.def.vertex[v] = true
}

// DisableChannel marks the routing channel between adjacent vertices u and
// v broken. It panics (via EdgeID) if u and v are not lattice neighbors.
func (g *Grid) DisableChannel(u, v int) {
	g.ensureDefects()
	g.def.edge[g.EdgeID(u, v)] = true
}

// TileDefective reports whether tile t is a fabrication defect.
func (g *Grid) TileDefective(t int) bool {
	return g.def != nil && g.def.tile[t]
}

// VertexDefective reports whether routing vertex v is dead.
func (g *Grid) VertexDefective(v int) bool {
	return g.def != nil && g.def.vertex[v]
}

// ChannelDefective reports whether the channel between adjacent vertices
// u and v is broken (the channel itself; endpoint-vertex defects are
// reported by VertexDefective).
func (g *Grid) ChannelDefective(u, v int) bool {
	return g.def != nil && g.def.edge[g.EdgeID(u, v)]
}

// HasDefects reports whether any defect has been applied.
func (g *Grid) HasDefects() bool { return g.def != nil }

// Usable reports whether tile t can host a program qubit: neither
// reserved (factory region) nor defective.
func (g *Grid) Usable(t int) bool {
	return !g.reserved[t] && !(g.def != nil && g.def.tile[t])
}

// Defects returns the grid's defects as a sorted DefectMap (empty, not
// nil, for a pristine grid) — the JSON round-trip source.
func (g *Grid) Defects() *DefectMap {
	d := &DefectMap{}
	if g.def == nil {
		return d
	}
	for t, bad := range g.def.tile {
		if bad {
			d.Tiles = append(d.Tiles, t)
		}
	}
	for v, bad := range g.def.vertex {
		if bad {
			d.Vertices = append(d.Vertices, v)
		}
	}
	for id, bad := range g.def.edge {
		if !bad {
			continue
		}
		u, v := g.EdgeEndpoints(id)
		d.Channels = append(d.Channels, [2]int{u, v})
	}
	sort.Ints(d.Tiles)
	sort.Ints(d.Vertices)
	sort.Slice(d.Channels, func(i, j int) bool {
		if d.Channels[i][0] != d.Channels[j][0] {
			return d.Channels[i][0] < d.Channels[j][0]
		}
		return d.Channels[i][1] < d.Channels[j][1]
	})
	return d
}

// Clone returns a deep copy of the grid, including reservations and
// defects. Compile uses it so WithDefects never mutates a caller's grid.
func (g *Grid) Clone() *Grid {
	// Coordinate tables are immutable and dimension-determined — share them.
	out := &Grid{W: g.W, H: g.H, reserved: append([]bool(nil), g.reserved...), vx: g.vx, vy: g.vy}
	if g.def != nil {
		out.def = &defectState{
			tile:   append([]bool(nil), g.def.tile...),
			vertex: append([]bool(nil), g.def.vertex...),
			edge:   append([]bool(nil), g.def.edge...),
		}
	}
	return out
}
