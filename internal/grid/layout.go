package grid

import "fmt"

// Layout is a (partial) assignment of program qubits to grid tiles — the
// π of Alg. 1. Unassigned entries are -1 on both sides. A Layout is valid
// for a specific Grid; reserved tiles never appear in it.
type Layout struct {
	QubitTile []int // program qubit -> tile, -1 if unmapped
	TileQubit []int // tile -> program qubit, -1 if empty
}

// NewLayout returns an empty layout for n program qubits on g. It panics
// if the grid cannot hold n qubits; sizing the grid is the caller's job
// and a too-small grid is a configuration bug.
func NewLayout(n int, g *Grid) *Layout {
	if g.Capacity() < n {
		panic(fmt.Sprintf("grid: %s cannot hold %d program qubits", g, n))
	}
	l := &Layout{
		QubitTile: make([]int, n),
		TileQubit: make([]int, g.Tiles()),
	}
	for i := range l.QubitTile {
		l.QubitTile[i] = -1
	}
	for i := range l.TileQubit {
		l.TileQubit[i] = -1
	}
	return l
}

// Assign maps qubit q to tile t. It panics on double-assignment or on a
// reserved or defective tile; placements construct layouts and must not
// collide.
func (l *Layout) Assign(q, t int, g *Grid) {
	if !g.Usable(t) {
		panic(fmt.Sprintf("grid: assign q%d to unusable (reserved/defective) tile %d", q, t))
	}
	if l.QubitTile[q] != -1 {
		panic(fmt.Sprintf("grid: qubit %d already mapped to tile %d", q, l.QubitTile[q]))
	}
	if l.TileQubit[t] != -1 {
		panic(fmt.Sprintf("grid: tile %d already holds qubit %d", t, l.TileQubit[t]))
	}
	l.QubitTile[q] = t
	l.TileQubit[t] = q
}

// Swap exchanges the contents of tiles t1 and t2 (either may be empty).
// This is the layout effect of a SWAP gate in the AutoBraid baseline.
func (l *Layout) Swap(t1, t2 int) {
	q1, q2 := l.TileQubit[t1], l.TileQubit[t2]
	l.TileQubit[t1], l.TileQubit[t2] = q2, q1
	if q1 != -1 {
		l.QubitTile[q1] = t2
	}
	if q2 != -1 {
		l.QubitTile[q2] = t1
	}
}

// Complete reports whether every program qubit is mapped.
func (l *Layout) Complete() bool {
	for _, t := range l.QubitTile {
		if t == -1 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (l *Layout) Clone() *Layout {
	return &Layout{
		QubitTile: append([]int(nil), l.QubitTile...),
		TileQubit: append([]int(nil), l.TileQubit...),
	}
}

// CopyFrom overwrites l with src's assignment without allocating. The
// two layouts must have the same qubit and tile counts; reusing a layout
// across differently-sized grids is a caller bug and panics.
func (l *Layout) CopyFrom(src *Layout) {
	if len(l.QubitTile) != len(src.QubitTile) || len(l.TileQubit) != len(src.TileQubit) {
		panic(fmt.Sprintf("grid: CopyFrom size mismatch (%d/%d qubits, %d/%d tiles)",
			len(l.QubitTile), len(src.QubitTile), len(l.TileQubit), len(src.TileQubit)))
	}
	copy(l.QubitTile, src.QubitTile)
	copy(l.TileQubit, src.TileQubit)
}

// Validate checks internal consistency against g: bijectivity between the
// two directions, bounds, and reservation. Returns the first problem or
// nil.
func (l *Layout) Validate(g *Grid) error {
	if len(l.TileQubit) != g.Tiles() {
		return fmt.Errorf("layout tile table size %d != grid tiles %d", len(l.TileQubit), g.Tiles())
	}
	for q, t := range l.QubitTile {
		if t == -1 {
			continue
		}
		if t < 0 || t >= g.Tiles() {
			return fmt.Errorf("qubit %d mapped to out-of-range tile %d", q, t)
		}
		if !g.Usable(t) {
			return fmt.Errorf("qubit %d mapped to unusable (reserved/defective) tile %d", q, t)
		}
		if l.TileQubit[t] != q {
			return fmt.Errorf("qubit %d -> tile %d but tile holds %d", q, t, l.TileQubit[t])
		}
	}
	for t, q := range l.TileQubit {
		if q == -1 {
			continue
		}
		if q < 0 || q >= len(l.QubitTile) {
			return fmt.Errorf("tile %d holds out-of-range qubit %d", t, q)
		}
		if l.QubitTile[q] != t {
			return fmt.Errorf("tile %d -> qubit %d but qubit maps to %d", t, q, l.QubitTile[q])
		}
	}
	return nil
}
