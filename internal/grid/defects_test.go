package grid

import (
	"reflect"
	"testing"
)

func TestDefectMapValidate(t *testing.T) {
	g := New(3, 3)
	cases := []struct {
		name string
		d    *DefectMap
		ok   bool
	}{
		{"nil", nil, true},
		{"empty", &DefectMap{}, true},
		{"good", &DefectMap{Tiles: []int{0, 8}, Vertices: []int{5}, Channels: [][2]int{{0, 1}, {1, 5}}}, true},
		{"tile out of range", &DefectMap{Tiles: []int{9}}, false},
		{"negative tile", &DefectMap{Tiles: []int{-1}}, false},
		{"vertex out of range", &DefectMap{Vertices: []int{16}}, false},
		{"channel endpoint out of range", &DefectMap{Channels: [][2]int{{0, 99}}}, false},
		{"channel not adjacent", &DefectMap{Channels: [][2]int{{0, 2}}}, false},
		{"channel diagonal", &DefectMap{Channels: [][2]int{{0, 5}}}, false},
	}
	for _, c := range cases {
		err := c.d.Validate(g)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestApplyDefectsRejectsInvalid(t *testing.T) {
	g := New(2, 2)
	if err := g.ApplyDefects(&DefectMap{Tiles: []int{7}}); err == nil {
		t.Fatal("expected error for out-of-range tile")
	}
	if g.HasDefects() {
		t.Fatal("rejected map must not mutate the grid")
	}
}

func TestDefectPredicatesAndCapacity(t *testing.T) {
	g := New(3, 3)
	if got := g.Capacity(); got != 9 {
		t.Fatalf("pristine capacity = %d, want 9", got)
	}
	g.DisableTile(4)
	g.DisableVertex(g.VertexID(1, 1))
	g.DisableChannel(g.VertexID(2, 2), g.VertexID(3, 2))

	if !g.TileDefective(4) || g.TileDefective(0) {
		t.Fatal("TileDefective wrong")
	}
	if g.Usable(4) {
		t.Fatal("defective tile reported usable")
	}
	if got := g.Capacity(); got != 8 {
		t.Fatalf("capacity with one dead tile = %d, want 8", got)
	}
	if !g.VertexDefective(g.VertexID(1, 1)) {
		t.Fatal("VertexDefective wrong")
	}
	if !g.ChannelDefective(g.VertexID(2, 2), g.VertexID(3, 2)) {
		t.Fatal("ChannelDefective wrong")
	}
	// Reserved and defective are distinct annotations that both kill Usable.
	g.ReserveTile(8)
	if g.TileDefective(8) {
		t.Fatal("reservation must not read as a defect")
	}
	if g.Usable(8) {
		t.Fatal("reserved tile reported usable")
	}
}

func TestDefectEdgeRoutable(t *testing.T) {
	g := New(3, 3)
	u, v := g.VertexID(1, 1), g.VertexID(2, 1)
	if !g.EdgeRoutable(u, v) {
		t.Fatal("pristine interior edge should route")
	}
	g.DisableChannel(u, v)
	if g.EdgeRoutable(u, v) || g.EdgeRoutable(v, u) {
		t.Fatal("broken channel should not route (either direction)")
	}

	// A dead vertex kills all four incident channels.
	g2 := New(3, 3)
	w := g2.VertexID(1, 1)
	g2.DisableVertex(w)
	for _, n := range []int{g2.VertexID(0, 1), g2.VertexID(2, 1), g2.VertexID(1, 0), g2.VertexID(1, 2)} {
		if g2.EdgeRoutable(w, n) || g2.EdgeRoutable(n, w) {
			t.Fatalf("edge incident to dead vertex %d routes", w)
		}
	}
	// VertexNeighbors skips unroutable edges, so the dead vertex is isolated.
	if ns := g2.VertexNeighbors(w, nil); len(ns) != 0 {
		t.Fatalf("dead vertex has neighbors %v", ns)
	}

	// A dead tile keeps its boundary channels open — only channels interior
	// to a dead/reserved *region* close, mirroring factory reservations.
	g3 := New(3, 3)
	g3.DisableTile(4) // center tile, corners (1,1),(2,1),(1,2),(2,2)
	if !g3.EdgeRoutable(g3.VertexID(1, 1), g3.VertexID(2, 1)) {
		t.Fatal("single dead tile must not close its boundary channels")
	}
	g3.DisableTile(1) // tile above center: edge (1,1)-(2,1) now interior
	if g3.EdgeRoutable(g3.VertexID(1, 1), g3.VertexID(2, 1)) {
		t.Fatal("channel between two dead tiles should be closed")
	}
}

func TestDefectsRoundTrip(t *testing.T) {
	g := New(4, 3)
	want := &DefectMap{
		Tiles:    []int{2, 7},
		Vertices: []int{6},
		Channels: [][2]int{{0, 1}, {3, 8}},
	}
	if err := g.ApplyDefects(want); err != nil {
		t.Fatal(err)
	}
	got := g.Defects()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Defects() = %+v, want %+v", got, want)
	}

	data, err := EncodeDefects(got)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeDefects(data)
	if err != nil {
		t.Fatal(err)
	}
	g2 := New(4, 3)
	if err := g2.ApplyDefects(dec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.Defects(), want) {
		t.Fatalf("JSON round-trip lost defects: %+v", g2.Defects())
	}

	if _, err := DecodeDefects([]byte("{nope")); err == nil {
		t.Fatal("expected decode error for bad JSON")
	}
	if d := New(2, 2).Defects(); !d.Empty() {
		t.Fatalf("pristine grid Defects() = %+v, want empty", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3, 3)
	g.ReserveTile(0)
	g.DisableTile(4)
	c := g.Clone()
	if !c.Reserved(0) || !c.TileDefective(4) {
		t.Fatal("clone lost reservation or defect")
	}
	c.DisableTile(5)
	c.DisableVertex(0)
	if g.TileDefective(5) || g.VertexDefective(0) {
		t.Fatal("mutating clone leaked into original")
	}
	// Cloning a pristine grid stays pristine (defect state lazily allocated).
	p := New(2, 2).Clone()
	if p.HasDefects() {
		t.Fatal("clone of pristine grid has defect state")
	}
}
