// Package grid models the double-defect surface-code hardware: a 2D array
// of qubit tiles, the routing lattice of tile-corner vertices and
// routing-channel edges that braiding paths travel on, and reserved
// regions for non-braiding FTQC components such as the magic-state
// factory.
//
// Geometry. Tiles live at (x, y) with 0 ≤ x < W, 0 ≤ y < H, indexed
// row-major. Routing vertices are the tile corners (x, y) with
// 0 ≤ x ≤ W, 0 ≤ y ≤ H; routing channels are the unit edges between
// adjacent corners. Each tile exposes its four corner vertices — the
// "routing vertices" of the paper — so a two-qubit gate has 4×4 = 16
// candidate corner pairs to braid between.
//
// Reserved (factory) tiles cannot host program qubits, and channels
// strictly interior to a reserved region (edges whose both flanking tiles
// are reserved) are unroutable. A single reserved tile therefore behaves
// exactly as the paper's "singular and non-braiding logical qubit":
// it consumes a mapping slot without blocking its boundary channels.
package grid

import "fmt"

// Grid is a W×H tile array. The zero value is unusable; construct with
// New, Square, or Rect.
type Grid struct {
	W, H     int
	reserved []bool       // per tile; true = no program qubit, non-braiding
	def      *defectState // fabrication defects; nil on a pristine grid
	vx, vy   []int16      // vertex id → corner coordinates; spares the hot paths a div/mod pair
}

// New returns a w×h grid with no reserved tiles.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	g := &Grid{W: w, H: h, reserved: make([]bool, w*h)}
	g.initCoords()
	return g
}

// initCoords fills the vertex coordinate tables. Coordinates depend only
// on W and H, so grids sharing dimensions may share the slices.
func (g *Grid) initCoords() {
	n := g.NumVertices()
	g.vx = make([]int16, n)
	g.vy = make([]int16, n)
	for v := 0; v < n; v++ {
		g.vx[v] = int16(v % g.VW())
		g.vy[v] = int16(v / g.VW())
	}
}

// Square returns the M×M grid for n program qubits, M = ceil(sqrt(n)).
func Square(n int) *Grid {
	m := isqrtCeil(n)
	return New(m, m)
}

// Rect returns the paper's hardware-level-optimized rectangular grid:
// M×(M−1) when that still fits n program qubits, M×M otherwise
// (M = ceil(sqrt(n))). The diminished grid trades a sliver of routing
// slack for a full column of hardware, balancing ResUtil.
func Rect(n int) *Grid {
	m := isqrtCeil(n)
	if m >= 2 && m*(m-1) >= n {
		return New(m, m-1)
	}
	return New(m, m)
}

func isqrtCeil(n int) int {
	if n <= 0 {
		return 1
	}
	m := 1
	for m*m < n {
		m++
	}
	return m
}

// Tiles returns the number of tiles (including reserved ones).
func (g *Grid) Tiles() int { return g.W * g.H }

// Capacity returns the number of tiles available to program qubits
// (neither reserved nor defective).
func (g *Grid) Capacity() int {
	n := 0
	for t := range g.reserved {
		if g.Usable(t) {
			n++
		}
	}
	return n
}

// ReservedTiles returns the number of reserved (factory) tiles.
func (g *Grid) ReservedTiles() int {
	n := 0
	for _, r := range g.reserved {
		if r {
			n++
		}
	}
	return n
}

// TileAt returns the tile index at column x, row y.
func (g *Grid) TileAt(x, y int) int { return y*g.W + x }

// TileXY returns the column and row of tile t.
func (g *Grid) TileXY(t int) (x, y int) { return t % g.W, t / g.W }

// InBounds reports whether (x, y) names a tile.
func (g *Grid) InBounds(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// Center returns the tile closest to the geometric center of the grid —
// the CalculateCenter(grid) seed of Alg. 1. When the center lands on a
// reserved or defective tile, the nearest usable tile (by Manhattan
// distance, then index) is returned instead.
func (g *Grid) Center() int {
	cx, cy := (g.W-1)/2, (g.H-1)/2
	c := g.TileAt(cx, cy)
	if g.Usable(c) {
		return c
	}
	best, bestD := -1, 1<<30
	for t := 0; t < g.Tiles(); t++ {
		if !g.Usable(t) {
			continue
		}
		x, y := g.TileXY(t)
		d := abs(x-cx) + abs(y-cy)
		if d < bestD {
			best, bestD = t, d
		}
	}
	return best
}

// Dist returns the Manhattan distance between tiles a and b.
func (g *Grid) Dist(a, b int) int {
	ax, ay := g.TileXY(a)
	bx, by := g.TileXY(b)
	return abs(ax-bx) + abs(ay-by)
}

// CardinalNeighbors returns the in-bounds, usable tiles adjacent to t
// in N, E, S, W order — the adjacentLoc candidates of Alg. 1.
func (g *Grid) CardinalNeighbors(t int) []int {
	x, y := g.TileXY(t)
	var out []int
	for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
		nx, ny := x+d[0], y+d[1]
		if g.InBounds(nx, ny) && g.Usable(g.TileAt(nx, ny)) {
			out = append(out, g.TileAt(nx, ny))
		}
	}
	return out
}

// Reserve marks the rectangle of tiles [x0,x1]×[y0,y1] (inclusive) as a
// non-braiding region (e.g. the magic-state factory). It returns an error
// if the rectangle is out of bounds.
func (g *Grid) Reserve(x0, y0, x1, y1 int) error {
	if x0 > x1 || y0 > y1 || !g.InBounds(x0, y0) || !g.InBounds(x1, y1) {
		return fmt.Errorf("grid: reserve rectangle (%d,%d)-(%d,%d) out of bounds for %dx%d", x0, y0, x1, y1, g.W, g.H)
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.reserved[g.TileAt(x, y)] = true
		}
	}
	return nil
}

// ReserveTile marks a single tile as reserved.
func (g *Grid) ReserveTile(t int) {
	g.reserved[t] = true
}

// Reserved reports whether tile t is reserved.
func (g *Grid) Reserved(t int) bool { return g.reserved[t] }

// --- routing lattice --------------------------------------------------------

// VW and VH return the vertex-lattice dimensions (W+1 and H+1).
func (g *Grid) VW() int { return g.W + 1 }
func (g *Grid) VH() int { return g.H + 1 }

// NumVertices returns the number of routing vertices.
func (g *Grid) NumVertices() int { return g.VW() * g.VH() }

// VertexID returns the id of the routing vertex at corner (x, y),
// 0 ≤ x ≤ W, 0 ≤ y ≤ H.
func (g *Grid) VertexID(x, y int) int { return y*g.VW() + x }

// VertexXY returns the corner coordinates of vertex v.
func (g *Grid) VertexXY(v int) (x, y int) { return int(g.vx[v]), int(g.vy[v]) }

// Corners returns the four routing vertices of tile t in NW, NE, SW, SE
// order.
func (g *Grid) Corners(t int) [4]int {
	x, y := g.TileXY(t)
	return [4]int{
		g.VertexID(x, y),
		g.VertexID(x+1, y),
		g.VertexID(x, y+1),
		g.VertexID(x+1, y+1),
	}
}

// NumEdges returns the size of the edge-id space (2 per vertex; ids for
// edges leaving the lattice are never produced).
func (g *Grid) NumEdges() int { return 2 * g.NumVertices() }

// EdgeID returns the canonical id of the routing channel between adjacent
// vertices u and v: 2*min + 0 for a horizontal channel, +1 for vertical.
// It panics if u and v are not lattice neighbors — edge ids are produced
// only by path construction, so a bad pair is a router bug.
func (g *Grid) EdgeID(u, v int) int {
	if u > v {
		u, v = v, u
	}
	ux, uy := g.VertexXY(u)
	vx, vy := g.VertexXY(v)
	switch {
	case uy == vy && vx == ux+1:
		return 2 * u
	case ux == vx && vy == uy+1:
		return 2*u + 1
	}
	panic(fmt.Sprintf("grid: EdgeID of non-adjacent vertices %d,%d", u, v))
}

// EdgeEndpoints inverts EdgeID: it returns the two adjacent vertices of
// channel id (u < v). Edge 2u is the horizontal channel east of vertex u,
// edge 2u+1 the vertical channel south of it. Ids on the far boundary
// (where no east/south neighbor exists) have no channel; callers that
// enumerate raw ids must skip them via EdgeExists.
func (g *Grid) EdgeEndpoints(id int) (u, v int) {
	u = id / 2
	ux, uy := g.VertexXY(u)
	if id%2 == 0 {
		return u, g.VertexID(ux+1, uy)
	}
	return u, g.VertexID(ux, uy+1)
}

// EdgeExists reports whether channel id denotes a real lattice channel:
// horizontal ids on the east vertex column and vertical ids on the south
// vertex row index past the lattice and are dead slots in the edge space.
func (g *Grid) EdgeExists(id int) bool {
	if id < 0 || id >= g.NumEdges() {
		return false
	}
	ux, uy := g.VertexXY(id / 2)
	if id%2 == 0 {
		return ux+1 < g.VW()
	}
	return uy+1 < g.VH()
}

// EdgeRoutable reports whether the channel between adjacent vertices u and
// v is usable: channels strictly interior to a reserved or defective
// region (both flanking tiles closed, or one flanking tile closed and the
// channel on the array boundary) are unroutable, as are channels marked
// defective and channels incident to a dead vertex. Boundary channels of
// a closed region shared with live tiles stay open.
func (g *Grid) EdgeRoutable(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	if g.def != nil {
		if g.def.vertex[u] || g.def.vertex[v] || g.def.edge[g.EdgeID(u, v)] {
			return false
		}
	}
	ux, uy := g.VertexXY(u)
	vx, _ := g.VertexXY(v)
	horizontal := vx == ux+1
	// The two tiles flanking the channel (either may be off-array).
	var t1x, t1y, t2x, t2y int
	if horizontal {
		t1x, t1y = ux, uy-1 // above
		t2x, t2y = ux, uy   // below
	} else {
		t1x, t1y = ux-1, uy // left
		t2x, t2y = ux, uy   // right
	}
	res := func(x, y int) bool {
		return g.InBounds(x, y) && !g.Usable(g.TileAt(x, y))
	}
	in1, in2 := g.InBounds(t1x, t1y), g.InBounds(t2x, t2y)
	r1, r2 := res(t1x, t1y), res(t2x, t2y)
	switch {
	case in1 && in2:
		return !(r1 && r2)
	case in1:
		return !r1
	case in2:
		return !r2
	}
	return true
}

// VertexNeighbors appends to dst the routable lattice neighbors of vertex
// v and returns the extended slice. Passing a reusable dst avoids
// per-step allocation in the A* inner loop.
func (g *Grid) VertexNeighbors(v int, dst []int) []int {
	x, y := g.VertexXY(v)
	for _, d := range [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}} {
		nx, ny := x+d[0], y+d[1]
		if nx < 0 || nx > g.W || ny < 0 || ny > g.H {
			continue
		}
		u := g.VertexID(nx, ny)
		if g.EdgeRoutable(v, u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// VertexDist returns the Manhattan distance between two routing vertices.
func (g *Grid) VertexDist(u, v int) int {
	ux, uy := g.VertexXY(u)
	vx, vy := g.VertexXY(v)
	return abs(ux-vx) + abs(uy-vy)
}

// ClosestCorners returns the corner pair (one of a, one of b) with the
// minimum Manhattan distance — the FindMinManhattanDistPoint step of the
// paper's path-finding (Alg. 2, line 16). Ties resolve to the earliest
// pair in NW, NE, SW, SE order, making path selection deterministic.
func (g *Grid) ClosestCorners(a, b int) (pa, pb int) {
	ca, cb := g.Corners(a), g.Corners(b)
	best := 1 << 30
	for _, u := range ca {
		for _, v := range cb {
			if d := g.VertexDist(u, v); d < best {
				best, pa, pb = d, u, v
			}
		}
	}
	return pa, pb
}

// String renders the grid dimensions and how many tiles are closed to
// program qubits (reserved or defective).
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%d (%d tiles, %d reserved)", g.W, g.H, g.Tiles(), g.Tiles()-g.Capacity())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
