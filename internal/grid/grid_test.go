package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquareAndRectSizing(t *testing.T) {
	cases := []struct {
		n        int
		sqW, sqH int
		rcW, rcH int
	}{
		{1, 1, 1, 1, 1},
		{4, 2, 2, 2, 2},  // 2x1=2 < 4, stays square
		{5, 3, 3, 3, 2},  // 3x2=6 >= 5
		{12, 4, 4, 4, 3}, // paper's 4x4 -> 4x3 example
		{16, 4, 4, 4, 4}, // 4x3=12 < 16
		{100, 10, 10, 10, 10},
		{90, 10, 10, 10, 9},
	}
	for _, c := range cases {
		sq := Square(c.n)
		if sq.W != c.sqW || sq.H != c.sqH {
			t.Errorf("Square(%d) = %dx%d, want %dx%d", c.n, sq.W, sq.H, c.sqW, c.sqH)
		}
		rc := Rect(c.n)
		if rc.W != c.rcW || rc.H != c.rcH {
			t.Errorf("Rect(%d) = %dx%d, want %dx%d", c.n, rc.W, rc.H, c.rcW, c.rcH)
		}
		if rc.Capacity() < c.n {
			t.Errorf("Rect(%d) capacity %d too small", c.n, rc.Capacity())
		}
	}
}

func TestTileIndexRoundTrip(t *testing.T) {
	g := New(5, 3)
	for tile := 0; tile < g.Tiles(); tile++ {
		x, y := g.TileXY(tile)
		if g.TileAt(x, y) != tile {
			t.Fatalf("tile %d -> (%d,%d) -> %d", tile, x, y, g.TileAt(x, y))
		}
		if !g.InBounds(x, y) {
			t.Fatalf("tile %d out of bounds", tile)
		}
	}
	if g.InBounds(5, 0) || g.InBounds(0, 3) || g.InBounds(-1, 0) {
		t.Error("InBounds accepts out-of-range coordinates")
	}
}

func TestCenter(t *testing.T) {
	if c := New(4, 4).Center(); c != New(4, 4).TileAt(1, 1) {
		t.Errorf("4x4 center = %d", c)
	}
	if c := New(3, 3).Center(); c != New(3, 3).TileAt(1, 1) {
		t.Errorf("3x3 center = %d", c)
	}
	g := New(3, 3)
	g.ReserveTile(g.TileAt(1, 1))
	c := g.Center()
	if g.Reserved(c) {
		t.Error("center landed on reserved tile")
	}
	if g.Dist(c, g.TileAt(1, 1)) != 1 {
		t.Errorf("fallback center %d not adjacent to true center", c)
	}
}

func TestDistAndCardinalNeighbors(t *testing.T) {
	g := New(4, 4)
	if d := g.Dist(g.TileAt(0, 0), g.TileAt(3, 2)); d != 5 {
		t.Errorf("Dist = %d", d)
	}
	n := g.CardinalNeighbors(g.TileAt(1, 1))
	if len(n) != 4 {
		t.Errorf("interior neighbors = %v", n)
	}
	n = g.CardinalNeighbors(g.TileAt(0, 0))
	if len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	g.ReserveTile(g.TileAt(1, 0))
	n = g.CardinalNeighbors(g.TileAt(0, 0))
	if len(n) != 1 {
		t.Errorf("neighbors with reserved = %v", n)
	}
}

func TestReserveBounds(t *testing.T) {
	g := New(3, 3)
	if err := g.Reserve(0, 0, 1, 1); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if g.Capacity() != 5 {
		t.Errorf("capacity = %d, want 5", g.Capacity())
	}
	if err := g.Reserve(2, 2, 3, 3); err == nil {
		t.Error("out-of-bounds reserve accepted")
	}
	if err := g.Reserve(2, 2, 1, 1); err == nil {
		t.Error("inverted rectangle accepted")
	}
}

func TestVertexLattice(t *testing.T) {
	g := New(2, 2)
	if g.NumVertices() != 9 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		x, y := g.VertexXY(v)
		if g.VertexID(x, y) != v {
			t.Fatalf("vertex %d round trip failed", v)
		}
	}
	c := g.Corners(g.TileAt(1, 1))
	want := [4]int{g.VertexID(1, 1), g.VertexID(2, 1), g.VertexID(1, 2), g.VertexID(2, 2)}
	if c != want {
		t.Errorf("corners = %v, want %v", c, want)
	}
}

func TestEdgeIDCanonical(t *testing.T) {
	g := New(3, 3)
	u := g.VertexID(1, 1)
	r := g.VertexID(2, 1)
	d := g.VertexID(1, 2)
	if g.EdgeID(u, r) != g.EdgeID(r, u) {
		t.Error("horizontal edge id not symmetric")
	}
	if g.EdgeID(u, d) != g.EdgeID(d, u) {
		t.Error("vertical edge id not symmetric")
	}
	if g.EdgeID(u, r) == g.EdgeID(u, d) {
		t.Error("edge ids collide")
	}
	defer func() {
		if recover() == nil {
			t.Error("EdgeID of non-adjacent pair did not panic")
		}
	}()
	g.EdgeID(g.VertexID(0, 0), g.VertexID(2, 0))
}

func TestEdgeIDsUnique(t *testing.T) {
	g := New(4, 3)
	seen := map[int]bool{}
	count := 0
	for v := 0; v < g.NumVertices(); v++ {
		x, y := g.VertexXY(v)
		if x < g.W {
			id := g.EdgeID(v, g.VertexID(x+1, y))
			if seen[id] {
				t.Fatalf("duplicate edge id %d", id)
			}
			seen[id] = true
			count++
		}
		if y < g.H {
			id := g.EdgeID(v, g.VertexID(x, y+1))
			if seen[id] {
				t.Fatalf("duplicate edge id %d", id)
			}
			seen[id] = true
			count++
		}
	}
	wantEdges := g.W*(g.H+1) + g.H*(g.W+1)
	if count != wantEdges {
		t.Errorf("edge count = %d, want %d", count, wantEdges)
	}
}

func TestEdgeRoutableAroundFactory(t *testing.T) {
	// 3x3 grid with a single reserved center tile: every channel stays
	// routable (single tile has no interior channels).
	g := New(3, 3)
	g.ReserveTile(g.TileAt(1, 1))
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.VertexNeighbors(v, nil) {
			if !g.EdgeRoutable(v, u) {
				t.Fatalf("channel %d-%d blocked by single reserved tile", v, u)
			}
		}
	}
	// 2x2 reserved block: the channel between the two reserved rows is
	// interior and must be closed.
	g2 := New(4, 4)
	if err := g2.Reserve(1, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	inner1 := g2.VertexID(2, 1)
	inner2 := g2.VertexID(2, 2)
	if g2.EdgeRoutable(inner1, inner2) {
		t.Error("interior factory channel routable")
	}
	// Boundary channel of the factory must stay open.
	b1 := g2.VertexID(1, 1)
	b2 := g2.VertexID(2, 1)
	if !g2.EdgeRoutable(b1, b2) {
		t.Error("factory boundary channel closed")
	}
}

func TestVertexNeighborsRespectBlockedEdges(t *testing.T) {
	g := New(4, 4)
	if err := g.Reserve(1, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	inner := g.VertexID(2, 2) // center of the reserved block
	n := g.VertexNeighbors(inner, nil)
	if len(n) != 0 {
		t.Errorf("interior factory vertex has neighbors %v", n)
	}
	corner := g.VertexID(0, 0)
	if len(g.VertexNeighbors(corner, nil)) != 2 {
		t.Error("grid corner should have 2 neighbors")
	}
}

func TestClosestCorners(t *testing.T) {
	g := New(4, 4)
	a := g.TileAt(0, 0)
	b := g.TileAt(2, 0)
	pa, pb := g.ClosestCorners(a, b)
	if d := g.VertexDist(pa, pb); d != 1 {
		t.Errorf("closest corner distance = %d, want 1", d)
	}
	// Adjacent tiles share corners: distance 0.
	c := g.TileAt(1, 0)
	pa, pb = g.ClosestCorners(a, c)
	if pa != pb {
		t.Errorf("adjacent tiles should share a corner: %d vs %d", pa, pb)
	}
}

func TestClosestCornersIsMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(2+rng.Intn(8), 2+rng.Intn(8))
		a := rng.Intn(g.Tiles())
		b := rng.Intn(g.Tiles())
		pa, pb := g.ClosestCorners(a, b)
		got := g.VertexDist(pa, pb)
		for _, u := range g.Corners(a) {
			for _, v := range g.Corners(b) {
				if g.VertexDist(u, v) < got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutAssignValidate(t *testing.T) {
	g := New(3, 3)
	l := NewLayout(4, g)
	l.Assign(0, 4, g)
	l.Assign(1, 1, g)
	if err := l.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.Complete() {
		t.Error("partial layout reported complete")
	}
	l.Assign(2, 0, g)
	l.Assign(3, 2, g)
	if !l.Complete() {
		t.Error("complete layout reported incomplete")
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { l.Assign(0, 5, g) }) // qubit already mapped
	l2 := NewLayout(2, g)
	l2.Assign(0, 3, g)
	mustPanic(func() { l2.Assign(1, 3, g) }) // tile occupied
	g.ReserveTile(7)
	mustPanic(func() { l2.Assign(1, 7, g) }) // reserved tile
}

func TestLayoutSwap(t *testing.T) {
	g := New(2, 2)
	l := NewLayout(2, g)
	l.Assign(0, 0, g)
	l.Assign(1, 3, g)
	l.Swap(0, 3)
	if l.QubitTile[0] != 3 || l.QubitTile[1] != 0 {
		t.Errorf("swap wrong: %v", l.QubitTile)
	}
	if err := l.Validate(g); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
	// Swap with empty tile.
	l.Swap(3, 1)
	if l.QubitTile[0] != 1 || l.TileQubit[3] != -1 {
		t.Errorf("swap with empty wrong: %v / %v", l.QubitTile, l.TileQubit)
	}
	if err := l.Validate(g); err != nil {
		t.Fatalf("Validate after empty swap: %v", err)
	}
}

func TestLayoutCloneIndependence(t *testing.T) {
	g := New(2, 2)
	l := NewLayout(1, g)
	l.Assign(0, 0, g)
	c := l.Clone()
	c.Swap(0, 1)
	if l.QubitTile[0] != 0 {
		t.Error("clone shares storage")
	}
}

func TestNewLayoutCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized layout accepted")
		}
	}()
	NewLayout(5, New(2, 2))
}

// Property: random assignment sequences keep Validate happy and preserve
// bijectivity.
func TestLayoutRandomAssignProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(3+rng.Intn(5), 3+rng.Intn(5))
		n := 1 + rng.Intn(g.Tiles())
		l := NewLayout(n, g)
		perm := rng.Perm(g.Tiles())
		for q := 0; q < n; q++ {
			l.Assign(q, perm[q], g)
		}
		for i := 0; i < 20; i++ {
			l.Swap(rng.Intn(g.Tiles()), rng.Intn(g.Tiles()))
		}
		return l.Validate(g) == nil && l.Complete()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
