package hilight

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"hilight/internal/core"
	"hilight/internal/sched"
	"hilight/internal/session"
)

// EditOp enumerates the circuit-edit operations a Delta may carry.
type EditOp = session.Op

// Circuit-edit operations. OpAppend ignores Edit.Index; the others
// address a gate position in the previous result's input circuit.
const (
	OpAppend  = session.OpAppend
	OpInsert  = session.OpInsert
	OpRemove  = session.OpRemove
	OpReplace = session.OpReplace
)

// Edit is one circuit edit of a Delta: an operation, the gate position
// it applies to, and the gate payload for append/insert/replace.
type Edit = session.Edit

// Delta describes what changed since a previous compile: circuit edits
// applied to the parent's input circuit, a replacement DefectMap, or
// both. The zero Delta recompiles the unchanged circuit (which replays
// the whole parent schedule).
type Delta struct {
	// Edits apply in order to the parent's input circuit.
	Edits []Edit `json:"edits,omitempty"`
	// Defects, when non-nil, replaces the defect map entirely: the new
	// grid is the parent's pristine BaseGrid degraded by this map (an
	// empty map heals all defects). Nil keeps the parent's grid.
	Defects *DefectMap `json:"defects,omitempty"`
}

// ErrWarmStart matches warm-start replay failures surfaced by the core
// pipeline. Recompile handles it internally (falling back to a cold
// compile); it is exported for callers driving core.RunOptions.Warm
// directly.
var ErrWarmStart = core.ErrWarmStart

// Recompile compiles an edited version of a previous result, reusing as
// much of the parent's work as the delta allows: the parent's placement
// is adopted verbatim and the longest still-valid prefix of the parent
// schedule is replayed byte-identically, so only the affected suffix
// pays routing cost. Result.WarmCycles reports how many layers were
// replayed (0 when the engine had to fall back to a cold compile — a
// fallback is always silent and always correct, never an error), and
// Result.Delta reports exactly what changed versus the parent schedule.
//
// The method defaults to the parent's; options override it and
// everything else, exactly as in Compile. Warm starts are incompatible
// with WithCompaction, WithFallback and layout-adjusting methods
// (anything that rewrites replayed cycles): those recompiles run cold
// but still report Delta.
func Recompile(prev *Result, delta Delta, opts ...Option) (*Result, error) {
	if prev == nil || prev.Schedule == nil || prev.Input == nil {
		return nil, fmt.Errorf("hilight: Recompile needs a previous Result with its Schedule and Input circuit")
	}
	edited, err := session.ApplyEdits(prev.Input, delta.Edits)
	if err != nil {
		return nil, fmt.Errorf("hilight: %w", err)
	}
	// Append-only deltas (the dominant session edit) get an incremental
	// working circuit: the parent's routed circuit plus the decomposed
	// new gates. This keeps the parent prefix intact by construction and
	// skips re-running SWAP decomposition and QCO over the whole edited
	// circuit — the transforms would otherwise rival the routing cost
	// the warm start saves. A zero-edit delta (defects only) reuses the
	// parent's working circuit outright.
	var childWorking *Circuit
	if prev.Circuit != nil {
		appendOnly := true
		for _, e := range delta.Edits {
			if e.Op != OpAppend {
				appendOnly = false
				break
			}
		}
		if appendOnly {
			if len(delta.Edits) == 0 {
				childWorking = prev.Circuit
			} else {
				gs := make([]Gate, len(delta.Edits))
				for i, e := range delta.Edits {
					gs[i] = e.Gate
				}
				childWorking = session.AppendWorking(prev.Circuit, gs)
			}
		}
	}
	g := prev.Grid
	if delta.Defects != nil {
		// A defect delta replaces the map: rebuild from the pristine grid.
		if prev.BaseGrid != nil {
			g = prev.BaseGrid
		}
		opts = append(opts, WithDefects(delta.Defects))
	}
	if prev.Method != "" {
		opts = append([]Option{WithMethod(prev.Method)}, opts...)
	}
	// prev.Circuit is the parent's working circuit (post SWAP
	// decomposition and QCO): reusing it saves recomputing both
	// transforms just to find the common prefix. If the caller's options
	// resolve QCO differently than the parent's compile did, the prefix
	// comes out wrong and replay verification degrades to cold — never
	// an incorrect schedule.
	res, err := recompileFrom(prev.Input, prev.Circuit, childWorking, prev.Schedule, edited, g, opts...)
	if err != nil {
		return nil, err
	}
	if delta.Defects == nil && prev.BaseGrid != nil {
		// The grid we compiled on was already the degraded one; keep the
		// true pristine grid so a later defect delta can rebuild from it.
		res.BaseGrid = prev.BaseGrid
	}
	return res, nil
}

// RecompileFrom is the service-shaped entry to the session engine: the
// parent is given as its input circuit and schedule (exactly what the
// schedule cache persists) instead of a full Result. c is the new
// (already edited) circuit and g the pristine grid; options are applied
// as in Compile. See Recompile for the warm-start semantics.
func RecompileFrom(parentCircuit *Circuit, parentSched *Schedule, c *Circuit, g *Grid, opts ...Option) (*Result, error) {
	return recompileFrom(parentCircuit, nil, nil, parentSched, c, g, opts...)
}

// recompileFrom is RecompileFrom with optional precomputed parent and
// child working circuits (nil recomputes them from the input circuits).
func recompileFrom(parentCircuit, parentWorking, childWorking *Circuit, parentSched *Schedule, c *Circuit, g *Grid, opts ...Option) (*Result, error) {
	if parentCircuit == nil || parentSched == nil {
		return nil, fmt.Errorf("hilight: RecompileFrom needs the parent circuit and schedule")
	}
	o := options{method: "hilight", seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if c == nil {
		return nil, ErrNilCircuit
	}
	if g == nil {
		return nil, ErrNilGrid
	}
	// No explicit c.Validate here: the pipeline's validate pass (and the
	// cold-fallback Compile) checks the circuit before any work happens,
	// and re-walking every gate per recompile is measurable on the
	// session hot path.
	sp, ok := core.LookupMethod(o.method)
	if !ok {
		return nil, fmt.Errorf("hilight: unknown method %q (have %v)", o.method, Methods())
	}

	// Anything that would rewrite replayed cycles — or retry with a
	// different method mid-flight — rules the warm path out.
	warmable := sp.Adjuster == "" && !o.compact && len(o.fallback) == 0

	var plan session.Plan
	var cw *Circuit
	dg := g
	if warmable {
		if !o.defects.Empty() {
			gg := g.Clone()
			if err := gg.ApplyDefects(o.defects); err != nil {
				return nil, err
			}
			dg = gg
		}
		qcoOn := sp.QCO
		if o.qco != nil {
			qcoOn = *o.qco
		}
		pw := parentWorking
		if pw == nil {
			pw = session.WorkingCircuit(parentCircuit, qcoOn)
		}
		cw = childWorking
		if cw == nil {
			cw = session.WorkingCircuit(c, qcoOn)
		}
		plan = session.PlanPrefix(parentSched, session.CommonPrefixGates(pw, cw), dg)
	}

	var res *Result
	var err error
	if plan.PrefixLen > 0 {
		res, err = runWarm(c, dg, sp, &o, &plan, cw)
		if err != nil && !errors.Is(err, ErrCanceled) {
			// Any warm failure — a replay mismatch, or a suffix the parent
			// placement cannot route — degrades to a cold compile, which
			// may still succeed under a fresh placement.
			res, err = nil, nil
		}
	}
	if res == nil && err == nil {
		res, err = Compile(c, g, opts...)
	}
	if err != nil {
		return nil, err
	}
	res.BaseGrid = g
	d := sched.Compare(parentSched, res.Schedule)
	res.Delta = &d
	return res, nil
}

// runWarm executes one warm-start pipeline attempt for the resolved
// method spec and plan. It mirrors Compile's single-attempt execution
// (fresh seeded rng, context/timeout handling) minus the fallback
// chain, which the caller owns.
func runWarm(c *Circuit, dg *Grid, sp core.Spec, o *options, plan *session.Plan, working *Circuit) (*Result, error) {
	ctx := o.ctx
	if o.timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hilight: %w (%v)", ErrCanceled, err)
		}
	}
	ro := core.RunOptions{
		Rng:       rand.New(&warmSource{s: uint64(o.seed)}),
		QCO:       o.qco,
		Observer:  o.observer,
		Sink:      o.sink,
		Metrics:   o.metrics,
		Ctx:       ctx,
		Placement: o.placement,
		Warm:      &core.WarmStart{Initial: plan.Initial, Prefix: plan.Prefix, Working: working},
	}
	return core.Run(c, dg, sp, ro)
}

// warmSource is a splitmix64 rand.Source for warm recompiles: seeding
// the stdlib source costs more than replaying a short prefix, while a
// warm suffix consumes only a handful of values for ordering
// tie-breaks. The stream differing from Compile's is fine — a warm
// result promises a valid schedule with a byte-identical replayed
// prefix, not the exact schedule a cold compile would emit — and
// determinism holds: same seed, same schedule.
type warmSource struct{ s uint64 }

func (w *warmSource) Seed(seed int64) { w.s = uint64(seed) }

func (w *warmSource) Int63() int64 {
	w.s += 0x9e3779b97f4a7c15
	z := w.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) >> 1)
}
