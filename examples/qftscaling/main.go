// QFT scaling study: the paper's Fig. 9 in miniature. Maps the quantum
// Fourier transform at increasing sizes with HiLight and the AutoBraid
// baseline and prints how latency and mapping runtime scale.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hilight"
)

func main() {
	methods := []string{"autobraid-sp", "autobraid-full", "hilight-map"}
	sizes := []int{10, 16, 32, 64, 100}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tgates\tmethod\tlatency\truntime")
	for _, n := range sizes {
		c := hilight.QFT(n)
		g := hilight.RectGrid(n)
		for _, m := range methods {
			res, err := hilight.Compile(c, g, hilight.WithMethod(m), hilight.WithSeed(7))
			if err != nil {
				log.Fatalf("%s on QFT-%d: %v", m, n, err)
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%s\n", n, c.Len(), m, res.Latency, res.Runtime)
		}
	}
	tw.Flush()

	fmt.Println("\nHiLight's pattern matching detects the QFT's complete")
	fmt.Println("interaction graph and selects a distributed random layout;")
	fmt.Println("the single-A*-search path-finder keeps runtime flat while")
	fmt.Println("the baseline's exhaustive search and SWAP insertion grow.")
}
