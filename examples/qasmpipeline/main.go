// QASM pipeline: parse an OpenQASM 2.0 program, apply the program-level
// optimization, verify semantic equivalence with the statevector oracle,
// map both versions, and write the routed circuit back out as QASM.
package main

import (
	"fmt"
	"log"

	"hilight"
)

const src = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
h q[0];
majority q[0],q[1],q[2];
cx q[0],q[3];
cx q[0],q[4];
cx q[3],q[4];
rz(pi/8) q[2];
cx q[1],q[2];
measure q[0] -> c[0];
`

func main() {
	c, err := hilight.ParseQASM("majority-demo", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d qubits, %d gates (%d two-qubit after Toffoli expansion)\n",
		c.Name, c.NumQubits, c.Len(), c.CXCount())

	// Program-level optimization: reorder commuting CXs for parallelism.
	opt := hilight.OptimizeProgram(c)

	// Measurements block the statevector oracle; drop them for the check
	// (they commute to the end in this program).
	stripped := c.Clone()
	stripped.Gates = withoutMeasure(stripped.Gates)
	optStripped := opt.Clone()
	optStripped.Gates = withoutMeasure(optStripped.Gates)
	eq, err := hilight.EquivalentCircuits(stripped, optStripped, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QCO semantic check: equivalent=%v\n", eq)

	g := hilight.RectGrid(c.NumQubits)
	plain, err := hilight.Compile(c, g, hilight.WithMethod("hilight-map"))
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := hilight.Compile(c, g, hilight.WithMethod("hilight-pg"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency without QCO: %d cycles\n", plain.Latency)
	fmt.Printf("latency with QCO:    %d cycles\n", tuned.Latency)

	fmt.Println("\nrouted circuit as OpenQASM:")
	fmt.Print(hilight.FormatQASM(tuned.Circuit))
}

func withoutMeasure(gates []hilight.Gate) []hilight.Gate {
	out := gates[:0]
	for _, g := range gates {
		if g.Kind != hilight.Measure {
			out = append(out, g)
		}
	}
	return out
}
