// Defect-aware compilation: a fabricated surface-code chip rarely comes
// out perfect, so the compiler must route around dead tiles, dead
// routing vertices and broken channels — and fail loudly (typed errors,
// bounded time) instead of spinning when the damage partitions the
// lattice.
//
// This example runs a miniature yield study with the public API only:
// for each defect rate it injects random defects into a grid one size
// above the paper's M×(M−1) baseline, compiles QFT-16 with the hilight
// method falling back to identity placement, and reports success rate,
// fallback use and latency inflation. It then shows the failure path: a
// deliberately partitioned grid returning ErrUnroutable, and a canceled
// context returning ErrCanceled.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"hilight"
)

func main() {
	c := hilight.QFT(16)
	// One grid size above RectGrid(16)'s 5×4: slack for dead tiles.
	g := hilight.NewGrid(5, 5)

	pristine, err := hilight.Compile(c, g, hilight.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pristine %s: latency %d cycles\n\n", g, pristine.Latency)

	fmt.Println("rate   compiled  fallback  latency.x  (20 random chips per rate)")
	for _, rate := range []float64{0.02, 0.05, 0.10} {
		var ok, degraded int
		var inflation float64
		const chips = 20
		for seed := int64(1); seed <= chips; seed++ {
			_, dm := hilight.InjectDefects(g, rate, seed)
			res, err := hilight.Compile(c, g,
				hilight.WithSeed(1),
				hilight.WithDefects(dm),
				hilight.WithFallback("identity"),
				hilight.WithTimeout(30*time.Second), // bound every attempt
			)
			if err != nil {
				var unroutable *hilight.ErrUnroutable
				var capacity *hilight.ErrInsufficientCapacity
				switch {
				case errors.As(err, &unroutable):
					// Damage disconnected the qubits this chip needs.
				case errors.As(err, &capacity):
					// Too few live tiles left for 16 qubits.
				default:
					log.Fatalf("unexpected failure mode: %v", err)
				}
				continue
			}
			ok++
			if res.Degraded {
				degraded++
			}
			inflation += float64(res.Latency) / float64(pristine.Latency)
		}
		avg := 0.0
		if ok > 0 {
			avg = inflation / float64(ok)
		}
		fmt.Printf("%3.0f%%   %2d/%d     %d         %.3f\n", rate*100, ok, chips, degraded, avg)
	}

	// Failure path 1: defects that partition the lattice. Disabling the
	// full vertex column at x=2 on a 4×1 strip cuts every braiding path
	// between the left and right halves.
	cut := &hilight.DefectMap{Vertices: []int{2, 7}} // (2,0) and (2,1) on the 5×2 vertex lattice
	strip := hilight.NewGrid(4, 1)
	pair := hilight.NewCircuit("cross-cut", 4)
	pair.Add2(hilight.CX, 0, 3)
	_, err = hilight.Compile(pair, strip, hilight.WithMethod("identity"), hilight.WithDefects(cut))
	var unroutable *hilight.ErrUnroutable
	if errors.As(err, &unroutable) {
		fmt.Printf("\npartitioned grid: gate %d unroutable — %s\n", unroutable.Gate, unroutable.Reason)
	} else {
		log.Fatalf("expected ErrUnroutable, got %v", err)
	}

	// Failure path 2: cancellation. A canceled context aborts before the
	// router does any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = hilight.Compile(c, g, hilight.WithContext(ctx))
	if errors.Is(err, hilight.ErrCanceled) {
		fmt.Println("canceled context: compile aborted with ErrCanceled")
	} else {
		log.Fatalf("expected ErrCanceled, got %v", err)
	}
}
