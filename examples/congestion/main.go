// Congestion profiling: watch the router work, cycle by cycle. Uses the
// WithObserver hook to record how much of the ready set each cycle could
// place, then prints a deferral histogram — the communication bottleneck
// the paper's placement and ordering optimizations exist to flatten.
package main

import (
	"fmt"
	"log"
	"strings"

	"hilight"
)

func main() {
	c := hilight.QFT(36)
	g := hilight.RectGrid(c.NumQubits)

	profile := func(method string) (latency int, stats []hilight.CycleStats) {
		res, err := hilight.Compile(c, g,
			hilight.WithMethod(method),
			hilight.WithObserver(func(s hilight.CycleStats) { stats = append(stats, s) }),
		)
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		return res.Latency, stats
	}

	var lastHeat string
	for _, method := range []string{"identity", "hilight-map"} {
		latency, stats := profile(method)
		res, err := hilight.Compile(c, g, hilight.WithMethod(method))
		if err == nil && method == "hilight-map" {
			lastHeat = hilight.RenderHeat(res.Schedule)
		}
		deferred, ready := 0, 0
		peak := 0
		for _, s := range stats {
			deferred += s.Deferred
			ready += s.Ready
			if s.Executed > peak {
				peak = s.Executed
			}
		}
		fmt.Printf("%s: latency %d, peak parallelism %d braids/cycle, deferral rate %.1f%%\n",
			method, latency, peak, 100*float64(deferred)/float64(ready))

		// Sparkline of per-cycle executed braids (first 60 cycles).
		const glyphs = " .:-=+*#%@"
		var bar strings.Builder
		for i, s := range stats {
			if i == 60 {
				break
			}
			idx := s.Executed * (len(glyphs) - 1) / max(peak, 1)
			bar.WriteByte(glyphs[idx])
		}
		fmt.Printf("  braids/cycle: |%s|\n\n", bar.String())
	}

	fmt.Println(lastHeat)
	fmt.Println("The identity layout scatters interacting qubits, so more of")
	fmt.Println("each cycle's ready set collides and defers; the proposed")
	fmt.Println("placement packs partners together and the profile flattens.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
