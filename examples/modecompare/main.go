// Mode comparison: double-defect braiding vs lattice surgery on the same
// workloads. Braiding packs qubits onto a compact M×(M−1) grid and routes
// on the tile-corner lattice; lattice surgery needs a quarter-density
// patch layout (~4× the tiles) but merges patches through ancilla lanes.
// This example quantifies that hardware-vs-latency trade.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hilight"
)

func main() {
	workloads := []*hilight.Circuit{
		hilight.QFT(16),
		hilight.BV(16),
		hilight.Ising(16, 5),
		hilight.QAOA(16, 24, 2),
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "circuit\tbraid.tiles\tbraid.latency\tsurgery.tiles\tsurgery.latency")
	for _, c := range workloads {
		bg := hilight.RectGrid(c.NumQubits)
		braid, err := hilight.Compile(c, bg, hilight.WithMethod("hilight-map"))
		if err != nil {
			log.Fatalf("%s braiding: %v", c.Name, err)
		}
		surg, err := hilight.CompileSurgery(c)
		if err != nil {
			log.Fatalf("%s surgery: %v", c.Name, err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n",
			c.Name, bg.Tiles(), braid.Latency,
			surg.Schedule.Grid.Tiles(), surg.Latency)
	}
	tw.Flush()

	fmt.Println("\nBraiding executes on ~n tiles; lattice surgery needs ~4n")
	fmt.Println("tiles so merge regions can route through free lanes, and")
	fmt.Println("each merge/split pair costs two cycles. The double-defect")
	fmt.Println("mode's braiding paths coexist with occupied tiles, which is")
	fmt.Println("exactly the communication advantage the paper optimizes.")
}
