// An incremental compile session, both in-process and over HTTP: a
// client iterating on a circuit recompiles after each edit, and the
// session engine replays the parent schedule's untouched prefix
// verbatim so only the affected suffix pays routing cost. The same
// session then survives live hardware degradation — a defect feed
// evicts every cached schedule the new map broke and recompiles each
// one warm from its own stale schedule.
//
// By default the HTTP half boots hilightd in-process on an ephemeral
// port so `go run ./examples/session` works standalone; point -addr at
// a running daemon (`make serve`, then -addr http://localhost:8753) to
// drive a real one.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"hilight"
	"hilight/internal/service"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running hilightd (empty boots one in-process)")
	flag.Parse()

	// == 1. The library engine: Recompile against a previous Result. ==
	fmt.Println("== 1. hilight.Recompile: edit loop ==")
	c := hilight.QFT(8)
	g := hilight.RectGrid(c.NumQubits)
	parent, err := hilight.Compile(c, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold compile: %d layers, latency %d\n", len(parent.Schedule.Layers), parent.Latency)

	// Append one gate at a time — the dominant session edit. WarmCycles
	// counts parent layers replayed byte-identically; Delta is the
	// sched.Compare diff against the parent schedule.
	res := parent
	for i := 0; i < 3; i++ {
		res, err = hilight.Recompile(res, hilight.Delta{Edits: []hilight.Edit{{
			Op:   hilight.OpAppend,
			Gate: hilight.Gate{Kind: hilight.CX, Q0: i, Q1: c.NumQubits - 1 - i},
		}}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("edit %d: +CX(%d,%d): %d/%d layers replayed warm, %d gates moved, %d re-routed\n",
			i+1, i, c.NumQubits-1-i, res.WarmCycles, len(res.Schedule.Layers),
			res.Delta.GateMoves, res.Delta.GateRepaths)
	}

	// Hardware degraded mid-session: replace the defect map. Prefix
	// layers that still route clear of the damage replay; the rest
	// re-route. A delta that invalidates the placement silently runs
	// cold (WarmCycles 0) — a fallback is never an error.
	_, dm := hilight.InjectDefects(hilight.RectGrid(c.NumQubits), 0.08, 11)
	res, err = hilight.Recompile(res, hilight.Delta{Defects: dm})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect delta (%d dead vertices, %d dead tiles, %d broken channels): %d/%d layers replayed, schedule validates on the degraded grid\n\n",
		len(dm.Vertices), len(dm.Tiles), len(dm.Channels), res.WarmCycles, len(res.Schedule.Layers))

	// == 2. The same engine over HTTP: compile sessions. ==
	fmt.Println("== 2. hilightd compile sessions ==")
	base := *addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv, err := service.New(service.Config{})
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("booted in-process hilightd at %s\n", base)
	}

	// The session protocol: send the FULL edited circuit plus an
	// If-Fingerprint-Match header naming the parent compile. The server
	// resolves the parent from its schedule cache and warm-starts.
	qasm := []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"qreg q[6];",
		"h q[0];",
		"cx q[0],q[1];",
		"cx q[1],q[2];",
		"cx q[2],q[3];",
		"cx q[3],q[4];",
		"cx q[4],q[5];",
	}
	head := compile(base, qasm, "")
	fmt.Printf("cold: fp=%s… latency=%d\n", head.Fingerprint[:12], head.LatencyCycles)

	for i := 0; i < 3; i++ {
		qasm = append(qasm, fmt.Sprintf("cx q[%d],q[%d];", i, 5-i))
		child := compile(base, qasm, head.Fingerprint)
		fmt.Printf("edit %d: fp=%s… warm_cycles=%d parent=%s…\n",
			i+1, child.Fingerprint[:12], child.WarmCycles, child.Parent[:12])
		head = child
	}

	// A parent that left the cache answers 412 Precondition Failed —
	// the client's signal to recompile cold and start a fresh lineage.
	// (The circuit must be new: a schedule-cache hit short-circuits the
	// session and serves the cached result regardless of the parent.)
	status, _ := post(base, append(qasm, "cx q[0],q[3];"), "sha256:0000000000000000")
	fmt.Printf("unknown parent: %d Precondition Failed\n", status)

	// == 3. The live defect feed. ==
	// Announce a defect map that kills a vertex the head schedule routes
	// through. The server sweeps its cache, evicts every conflicting
	// schedule, recompiles each warm from its own stale schedule, and
	// returns the old→new fingerprint mapping.
	fmt.Println("\n== 3. POST /v1/defects: live degradation ==")
	var sched *hilight.Schedule
	if sched, err = hilight.DecodeScheduleJSON(head.Schedule); err != nil {
		log.Fatal(err)
	}
	dead := -1
	for _, layer := range sched.Layers {
		for _, b := range layer {
			if len(b.Path) > 0 {
				dead = b.Path[0]
			}
		}
	}
	feedBody, _ := json.Marshal(map[string]any{"defects": &hilight.DefectMap{Vertices: []int{dead}}})
	resp, err := http.Post(base+"/v1/defects", "application/json", bytes.NewReader(feedBody))
	if err != nil {
		log.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var feed struct {
		Checked      int               `json:"checked"`
		Conflicting  int               `json:"conflicting"`
		Recompiled   int               `json:"recompiled"`
		Fingerprints map[string]string `json:"fingerprints"`
	}
	if err := json.Unmarshal(data, &feed); err != nil {
		log.Fatalf("defect feed: %s", data)
	}
	fmt.Printf("feed (vertex %d dead): %d checked, %d conflicting, %d recompiled warm\n",
		dead, feed.Checked, feed.Conflicting, feed.Recompiled)
	if newFP, ok := feed.Fingerprints[head.Fingerprint]; ok && newFP != "" {
		fmt.Printf("session head remapped: %s… -> %s…\n", head.Fingerprint[:12], newFP[:12])
	}
}

// sessionResponse is the subset of the compile response the session
// client reads.
type sessionResponse struct {
	Fingerprint   string          `json:"fingerprint"`
	LatencyCycles int             `json:"latency_cycles"`
	WarmCycles    int             `json:"warm_cycles"`
	Parent        string          `json:"parent"`
	Schedule      json.RawMessage `json:"schedule"`
}

// post compiles the QASM program, naming parentFP in
// If-Fingerprint-Match when non-empty, and returns the raw status+body.
func post(base string, qasm []string, parentFP string) (int, []byte) {
	body, err := json.Marshal(map[string]any{"qasm": strings.Join(qasm, "\n")})
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if parentFP != "" {
		req.Header.Set("If-Fingerprint-Match", parentFP)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, data
}

// compile is post + decode, fatal on any non-200.
func compile(base string, qasm []string, parentFP string) *sessionResponse {
	status, data := post(base, qasm, parentFP)
	if status != http.StatusOK {
		log.Fatalf("compile: %d: %s", status, data)
	}
	var sr sessionResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		log.Fatal(err)
	}
	return &sr
}
