// SVG export: compile a benchmark and write the braiding schedule as a
// standalone SVG document — one frame per cycle, braids as colored
// polylines, the magic-state factory marked — plus the ASCII heat map on
// stdout for a quick look.
package main

import (
	"fmt"
	"log"
	"os"

	"hilight"
)

func main() {
	c, ok := hilight.Benchmark("QFT-16")
	if !ok {
		log.Fatal("benchmark missing")
	}
	g, err := hilight.GridWithFactory(c.NumQubits, 1, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hilight.Compile(c, g, hilight.WithMethod("hilight-map"), hilight.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	const out = "schedule.svg"
	if err := os.WriteFile(out, []byte(hilight.RenderSVG(res.Schedule, 6)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: first 6 of %d cycles, %d braids total\n",
		out, res.Latency, res.Schedule.BraidCount())

	fmt.Println()
	fmt.Print(hilight.RenderHeat(res.Schedule))
}
