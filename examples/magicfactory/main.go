// Magic-state factory sizing: the paper's future-work direction made
// concrete. Compiles a T-heavy reversible benchmark, overlays a
// distillation-throughput model on the braiding schedule, and sizes the
// factory so T-gate consumption never stalls the computation.
package main

import (
	"fmt"
	"log"

	"hilight"
)

func main() {
	// RevLib-style reversible blocks are Toffoli-heavy, so their
	// Clifford+T expansion is dense in T gates.
	c, ok := hilight.Benchmark("sqrt8_260")
	if !ok {
		log.Fatal("benchmark missing")
	}
	g, err := hilight.GridWithFactory(c.NumQubits, 1, 1, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hilight.Compile(c, g, hilight.WithMethod("hilight-map"))
	if err != nil {
		log.Fatal(err)
	}

	unit := hilight.DefaultMagicFactory()
	rep, err := hilight.AnalyzeMagic(res.Circuit, res.Schedule, unit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d T/T† gates over %d braiding cycles (peak %d per cycle)\n",
		c.Name, rep.TCount, rep.BraidLatency, rep.PeakDemand)
	fmt.Printf("1 distillation unit (1 state / %d cycles): %d stall cycles → latency %d\n",
		unit.Period, rep.StallCycles, rep.TotalLatency)

	k, err := hilight.MagicFactoriesNeeded(res.Circuit, res.Schedule, unit, 0, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunits needed for stall-free execution: %d\n", k)

	sized := unit
	sized.Count = k
	sized.Buffer = unit.Buffer * k
	sized.Initial = unit.Initial * k
	repK, err := hilight.AnalyzeMagic(res.Circuit, res.Schedule, sized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d units: %d stalls, factory utilization %.1f%%\n",
		k, repK.StallCycles, 100*repK.Utilization)

	fmt.Println("\nThe grid reserves one tile for the factory region; braids")
	fmt.Println("route around it (its boundary channels stay open), and the")
	fmt.Println("throughput model tells you how many distillation units that")
	fmt.Println("region must actually contain for this workload.")
}
