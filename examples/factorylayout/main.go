// Factory layout: hardware-level optimization (§3.4). Reserves a
// magic-state factory region on the grid, maps a workload around it, and
// compares resource utilization across grid shapes.
package main

import (
	"fmt"
	"log"

	"hilight"
)

func main() {
	const n = 12 // program qubits (the paper's 4×4 → 4×3 example size)
	c, ok := hilight.Benchmark("sqrt8_260")
	if !ok {
		log.Fatal("benchmark missing")
	}

	type config struct {
		name string
		grid *hilight.Grid
	}
	square := hilight.SquareGrid(n)
	rect := hilight.RectGrid(n)
	withFactory, err := hilight.GridWithFactory(n, 2, 2, false)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []config{
		{"square M×M", square},
		{"rect M×(M−1)", rect},
		{"square + 2×2 factory", withFactory},
	} {
		res, err := hilight.Compile(c, cfg.grid, hilight.WithMethod("hilight-map"))
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		fmt.Printf("%-22s %v\n", cfg.name, cfg.grid)
		fmt.Printf("  latency %4d   resutil %.3f   pathlen %d\n",
			res.Latency, res.ResUtil, res.PathLen)
	}

	fmt.Println("\nThe factory tiles host no program qubits and braids may not")
	fmt.Println("cross the region's interior, yet its boundary channels stay")
	fmt.Println("routable — the factory behaves as a single non-braiding")
	fmt.Println("logical qubit, exactly as §3.4 models it.")
}
