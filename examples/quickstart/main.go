// Quickstart: build a small circuit, map it onto a surface-code grid,
// and inspect the braiding schedule.
package main

import (
	"fmt"
	"log"

	"hilight"
)

func main() {
	// A 6-qubit circuit: a GHZ chain followed by two parallel CX pairs.
	c := hilight.NewCircuit("quickstart", 6)
	c.Add1(hilight.H, 0)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 1, 2)
	c.Add2(hilight.CX, 2, 3)
	c.Add2(hilight.CX, 0, 1) // pairs that can braid together
	c.Add2(hilight.CX, 4, 5)

	// The paper's hardware-optimized rectangular grid: M×(M−1).
	g := hilight.RectGrid(c.NumQubits)

	res, err := hilight.Compile(c, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mapped %q onto %v\n", c.Name, g)
	fmt.Printf("latency: %d braiding cycles for %d two-qubit gates\n",
		res.Latency, res.Circuit.CXCount())
	fmt.Printf("resource utilization (Eq. 1): %.3f\n", res.ResUtil)
	fmt.Printf("mapping runtime: %s\n\n", res.Runtime)

	for i, layer := range res.Schedule.Layers {
		fmt.Printf("cycle %d:\n", i)
		for _, b := range layer {
			fmt.Printf("  %-14v tiles %d->%d, path of %d channels\n",
				res.Circuit.Gates[b.Gate], b.CtlTile, b.TgtTile, b.Path.Len())
		}
	}

	// Every schedule validates against the routed circuit: intersecting
	// braids, out-of-order gates, or missing gates are impossible.
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		log.Fatalf("schedule failed validation: %v", err)
	}
	fmt.Println("\nschedule validated: disjoint braids, program order preserved")
}
