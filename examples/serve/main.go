// Compile-as-a-service from the client side: submit an async batch to
// hilightd with a retry-aware HTTP client, poll the job until it
// finishes, crash the daemon mid-conversation, and recover — first via
// the durable job journal (the same id answers after a restart), then
// via fingerprint-keyed idempotent resubmission (what a client does
// when the daemon runs without a journal).
//
// By default the example boots the service in-process on an ephemeral
// port so `go run ./examples/serve` works standalone; point -addr at a
// running daemon (e.g. `make serve`, then -addr http://localhost:8753)
// to drive a real one — the restart demo is then skipped, since the
// example can't crash a daemon it doesn't own. Either way everything
// past the boot is plain HTTP — exactly what a non-Go client would do.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"hilight/internal/service"
	"hilight/internal/wire"
)

// submitBody is the batch every phase of the walkthrough submits.
// Options (method, compact, seed...) are batch-level, matching
// CompileAll: one option list, many circuits.
var submitBody = map[string]any{
	"jobs": []map[string]any{
		{"benchmark": "QFT-16"},
		{"benchmark": "CC-11"},
		{"benchmark": "BV-10"},
	},
	"compact": true,
	"seed":    7,
}

// submitAck is the 202 body of POST /v1/jobs.
type submitAck struct {
	ID           string   `json:"id"`
	Count        int      `json:"count"`
	Fingerprints []string `json:"fingerprints"`
}

// pollBody is the GET /v1/jobs/{id} body.
type pollBody struct {
	Status   string `json:"status"`
	Finished int    `json:"finished"`
	Results  []struct {
		Error  string `json:"error"`
		Result *struct {
			Fingerprint   string          `json:"fingerprint"`
			Method        string          `json:"method"`
			Cached        bool            `json:"cached"`
			LatencyCycles int             `json:"latency_cycles"`
			PathLen       int             `json:"path_len"`
			Schedule      json.RawMessage `json:"schedule"`
		} `json:"result"`
	} `json:"results"`
}

// doRetry issues req-building fn with capped exponential backoff plus
// jitter. It retries on connection errors (the daemon may be mid-
// restart), 429 (honoring the server's Retry-After hint when present),
// and 503 (draining). Anything else — success or a real failure — is
// returned to the caller.
func doRetry(build func() (*http.Request, error)) (*http.Response, []byte, error) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && resp.StatusCode != http.StatusTooManyRequests &&
			resp.StatusCode != http.StatusServiceUnavailable {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			return resp, data, rerr
		}
		wait := backoff
		if err == nil {
			// Prefer the server's own hint over our schedule.
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, perr := strconv.Atoi(s); perr == nil {
					wait = time.Duration(secs) * time.Second
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Printf("    retry %d: server busy (%d), waiting %s\n", attempt+1, resp.StatusCode, wait)
		} else {
			fmt.Printf("    retry %d: %v, waiting %s\n", attempt+1, err, wait)
		}
		if attempt >= 8 {
			return nil, nil, fmt.Errorf("giving up after %d attempts", attempt+1)
		}
		// Full jitter keeps a fleet of retrying clients from stampeding.
		time.Sleep(wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1)))
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func postJSON(base, path string, v any) (*http.Response, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, nil, err
	}
	return doRetry(func() (*http.Request, error) {
		req, err := http.NewRequest("POST", base+path, bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, err
	})
}

func getJSON(base, path string) (*http.Response, []byte, error) {
	return doRetry(func() (*http.Request, error) {
		return http.NewRequest("GET", base+path, nil)
	})
}

// submit posts the batch and decodes the ack.
func submit(base string) submitAck {
	resp, data, err := postJSON(base, "/v1/jobs", submitBody)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var ack submitAck
	if err := json.Unmarshal(data, &ack); err != nil {
		log.Fatal(err)
	}
	return ack
}

// poll loops GET /v1/jobs/{id} until the batch reports done.
func poll(base, id string, count int) pollBody {
	var status pollBody
	for {
		resp, data, err := getJSON(base, "/v1/jobs/"+id)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("poll: %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &status); err != nil {
			log.Fatalf("poll: %s", data)
		}
		fmt.Printf("  poll: %s (%d/%d finished)\n", status.Status, status.Finished, count)
		if status.Status == "done" {
			return status
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func printResults(status pollBody) {
	for i, r := range status.Results {
		if r.Error != "" {
			fmt.Printf("  job %d: FAILED: %s\n", i, r.Error)
			continue
		}
		fmt.Printf("  job %d: method=%s cached=%v latency=%d cycles, path=%d, schedule=%d bytes, fp=%s...\n",
			i, r.Result.Method, r.Result.Cached, r.Result.LatencyCycles, r.Result.PathLen,
			len(r.Result.Schedule), r.Result.Fingerprint[:12])
	}
}

// bootDaemon starts an in-process hilightd journaling under dir and
// returns its base URL plus the pieces needed to crash or stop it.
func bootDaemon(dir string) (base string, srv *service.Server, hs *http.Server) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err = service.New(service.Config{JournalDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	hs = &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), srv, hs
}

func main() {
	addr := flag.String("addr", "", "base URL of a running hilightd (empty boots one in-process)")
	flag.Parse()

	external := *addr != ""
	base := *addr
	var srv *service.Server
	var hs *http.Server
	var journalDir string
	if !external {
		dir, err := os.MkdirTemp("", "hilightd-journal-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		journalDir = dir
		base, srv, hs = bootDaemon(journalDir)
		fmt.Printf("booted in-process hilightd at %s (journal: %s)\n\n", base, journalDir)
	}

	// 1. Submit a batch and run it to completion. The 202 ack returns
	// the per-job fingerprints — keep them: they are the idempotency
	// keys for everything that follows.
	fmt.Println("== 1. submit and poll ==")
	ack := submit(base)
	fmt.Printf("submitted batch %s (%d jobs, fingerprints %v...)\n", ack.ID, ack.Count, short(ack.Fingerprints))
	printResults(poll(base, ack.ID, ack.Count))

	if external {
		fmt.Println("\n(-addr given: skipping the crash/recovery demo on a daemon we don't own)")
		return
	}

	// 2. Crash the daemon (Kill emulates kill -9: no drain, unsynced
	// journal tail dropped) and boot a fresh one over the same journal.
	// The acknowledged batch survives: polling the SAME id on the new
	// process answers, served from the replayed journal.
	fmt.Println("\n== 2. crash, restart, poll the same id ==")
	hs.Close()
	srv.Kill()
	base, srv, hs = bootDaemon(journalDir)
	fmt.Printf("restarted hilightd at %s over the same journal\n", base)
	printResults(poll(base, ack.ID, ack.Count))

	// 3. Idempotent resubmission: a client that does NOT trust the
	// journal (or talks to a journal-less daemon) resubmits the same
	// batch after a restart and compares fingerprints. Compilation is
	// deterministic, so matching fingerprints mean the recomputed
	// results are byte-identical schedules.
	fmt.Println("\n== 3. idempotent resubmission keyed by fingerprint ==")
	re := submit(base)
	if fmt.Sprint(re.Fingerprints) != fmt.Sprint(ack.Fingerprints) {
		log.Fatalf("fingerprints changed across restart: %v vs %v", re.Fingerprints, ack.Fingerprints)
	}
	fmt.Printf("resubmitted as %s; fingerprints match the original ack — same compiles\n", re.ID)
	printResults(poll(base, re.ID, re.Count))

	// 4. Content negotiation and layer streaming on the sync endpoint.
	// JSON stays the default; Accept: application/x-hilight-sched answers
	// the compact binary wire payload (here a cache hit from the batch
	// above, flagged in the X-Hilight-Cached header), and ?stream=1
	// delivers the schedule as binary frames while the router is still
	// producing layers.
	fmt.Println("\n== 4. binary negotiation and layer streaming ==")
	demoWireFormats(base)

	hs.Close()
	shutdown(srv)
}

func demoWireFormats(base string) {
	body, err := json.Marshal(map[string]any{"benchmark": "QFT-16", "compact": true, "seed": 7})
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-hilight-sched")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	bin, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("binary compile: %d: %s", resp.StatusCode, bin)
	}
	sched, err := wire.Binary.Decode(bin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  binary: %d bytes (cached=%s), decodes to %d layers\n",
		len(bin), resp.Header.Get("X-Hilight-Cached"), len(sched.Layers))

	// Streaming excludes compact (frames are the router's raw output), so
	// this request compiles fresh and the frames arrive mid-compile.
	sbody, err := json.Marshal(map[string]any{"benchmark": "QFT-16", "seed": 7, "no_cache": true})
	if err != nil {
		log.Fatal(err)
	}
	sresp, err := http.Post(base+"/v1/compile?stream=1", "application/json", bytes.NewReader(sbody))
	if err != nil {
		log.Fatal(err)
	}
	defer sresp.Body.Close()
	dec := wire.NewStreamDecoder(sresp.Body)
	layers := 0
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		switch f.Kind {
		case wire.FrameLayer:
			layers++
		case wire.FrameEnd:
			fmt.Printf("  stream: grid frame, %d layer frames, trailer %s\n", layers, f.Payload)
		case wire.FrameError:
			log.Fatalf("stream aborted: %s", f.Payload)
		}
	}
}

func short(fps []string) []string {
	out := make([]string, len(fps))
	for i, fp := range fps {
		if len(fp) > 8 {
			fp = fp[:8]
		}
		out[i] = fp
	}
	return out
}

func shutdown(srv *service.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
