// Compile-as-a-service from the client side: submit an async batch to
// hilightd, poll the job until it finishes, and fetch the schedules.
//
// By default the example boots the service in-process on an ephemeral
// port so `go run ./examples/serve` works standalone; point -addr at a
// running daemon (e.g. `make serve`, then -addr http://localhost:8753)
// to drive a real one. Either way everything past the boot is plain
// HTTP — exactly what a non-Go client would do.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"hilight/internal/service"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running hilightd (empty boots one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := service.New(service.Config{})
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("booted in-process hilightd at %s\n\n", base)
	}

	// 1. Submit a batch. Options (method, compact, seed...) are
	// batch-level, matching CompileAll: one option list, many circuits.
	submit := map[string]any{
		"jobs": []map[string]any{
			{"benchmark": "QFT-16"},
			{"benchmark": "CC-11"},
			{"benchmark": "BV-10"},
		},
		"compact": true,
		"seed":    7,
	}
	body, _ := json.Marshal(submit)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID    string `json:"id"`
		Count int    `json:"count"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted batch %s (%d jobs)\n", sub.ID, sub.Count)

	// 2. Poll until the batch reports "done". The poll body carries a
	// live finished-count while running and the full results when done.
	var status struct {
		Status   string `json:"status"`
		Finished int    `json:"finished"`
		Results  []struct {
			Error  string `json:"error"`
			Result *struct {
				Fingerprint   string          `json:"fingerprint"`
				Method        string          `json:"method"`
				LatencyCycles int             `json:"latency_cycles"`
				PathLen       int             `json:"path_len"`
				Schedule      json.RawMessage `json:"schedule"`
			} `json:"result"`
		} `json:"results"`
	}
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			log.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &status); err != nil {
			log.Fatalf("poll: %s", data)
		}
		fmt.Printf("  poll: %s (%d/%d finished)\n", status.Status, status.Finished, sub.Count)
		if status.Status == "done" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 3. Read the schedules out of the final poll.
	fmt.Println("\nresults:")
	for i, r := range status.Results {
		if r.Error != "" {
			fmt.Printf("  job %d: FAILED: %s\n", i, r.Error)
			continue
		}
		fmt.Printf("  job %d: method=%s latency=%d cycles, path=%d, schedule=%d bytes, fp=%s...\n",
			i, r.Result.Method, r.Result.LatencyCycles, r.Result.PathLen,
			len(r.Result.Schedule), r.Result.Fingerprint[:12])
	}
}
