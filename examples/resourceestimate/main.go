// Resource estimation: from a braiding schedule to hardware numbers.
// Compiles workloads of increasing size and reports, for each, the code
// distance, physical qubit count and wall-clock time needed to finish
// within a target logical-error budget on superconducting-style hardware.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hilight"
)

func main() {
	const budget = 1e-3 // whole-run failure probability target
	params := hilight.DefaultErrorModel()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "circuit\tlatency\tdistance\tphys.qubits\twall clock")
	for _, c := range []*hilight.Circuit{
		hilight.BV(16),
		hilight.QFT(16),
		hilight.QFT(64),
		hilight.Ising(100, 5),
	} {
		g := hilight.RectGrid(c.NumQubits)
		res, err := hilight.Compile(c, g)
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		rep, err := hilight.EstimateResources(res.Schedule, budget, params)
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		fmt.Fprintf(tw, "%s\t%d\td=%d\t%d\t%v\n",
			c.Name, res.Latency, rep.Distance, rep.PhysicalQubits, rep.WallClock)
	}
	tw.Flush()

	fmt.Printf("\n(budget %.0e per run, p=%.0e, threshold %.0e, %v code cycles)\n",
		budget, params.PhysError, params.Threshold, hilight.DefaultErrorModel().CodeCycle)
	fmt.Println("Latency reductions from better mapping translate directly")
	fmt.Println("into smaller space-time volume — and therefore either a")
	fmt.Println("smaller code distance or a tighter achievable error budget.")
}
