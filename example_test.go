package hilight_test

import (
	"fmt"

	"hilight"
)

// ExampleCompile maps a GHZ chain: the CX chain serializes, one cycle
// per gate, and the pattern-matched linear layout keeps every braid on a
// shared tile corner (one occupied routing vertex per braid).
func ExampleCompile() {
	c := hilight.GHZ(5)
	g := hilight.RectGrid(c.NumQubits)
	res, err := hilight.Compile(c, g)
	if err != nil {
		panic(err)
	}
	fmt.Println("latency:", res.Latency)
	fmt.Println("path length:", res.PathLen)
	// Output:
	// latency: 4
	// path length: 4
}

// ExampleCompile_methods compares HiLight with the AutoBraid baseline on
// the same workload.
func ExampleCompile_methods() {
	c := hilight.BV(10)
	g := hilight.RectGrid(c.NumQubits)
	for _, m := range []string{"hilight-map", "autobraid-sp"} {
		res, err := hilight.Compile(c, g, hilight.WithMethod(m))
		if err != nil {
			panic(err)
		}
		// BV's CX star serializes under any method: latency 9.
		fmt.Printf("%s: latency %d\n", m, res.Latency)
	}
	// Output:
	// hilight-map: latency 9
	// autobraid-sp: latency 9
}

// ExampleParseQASM round-trips an OpenQASM 2.0 program through the IR.
func ExampleParseQASM() {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`
	c, err := hilight.ParseQASM("bell", src)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.NumQubits, "qubits,", c.Len(), "gates")
	// Output:
	// 2 qubits, 2 gates
}

// ExampleOptimizeProgram shows the Fig. 6 commuting-CX reordering
// shrinking circuit depth.
func ExampleOptimizeProgram() {
	c := hilight.NewCircuit("fan", 4)
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 0, 2)
	c.Add2(hilight.CX, 3, 2) // shares target with the previous CX: commutes

	res1, _ := hilight.Compile(c, hilight.SquareGrid(4), hilight.WithMethod("hilight-map"))
	res2, _ := hilight.Compile(c, hilight.SquareGrid(4), hilight.WithMethod("hilight-pg"))
	fmt.Println("without QCO:", res1.Latency)
	fmt.Println("with QCO:   ", res2.Latency)
	// Output:
	// without QCO: 3
	// with QCO:    2
}

// ExampleCompressProgram cancels inverse pairs and merges rotations.
func ExampleCompressProgram() {
	c := hilight.NewCircuit("noisy", 2)
	c.Add1(hilight.H, 0)
	c.Add1(hilight.H, 0) // cancels
	c.Add2(hilight.CX, 0, 1)
	c.Add2(hilight.CX, 0, 1) // cancels
	c.AddRot(hilight.RZ, 1, 0.25)
	c.AddRot(hilight.RZ, 1, 0.50) // merges
	o := hilight.CompressProgram(c)
	fmt.Println("gates:", o.Len())
	fmt.Println(o.Gates[0])
	// Output:
	// gates: 1
	// rz(0.75) q[1]
}

// ExampleRenderLayout draws a 2×2 grid with one reserved factory tile.
func ExampleRenderLayout() {
	g := hilight.SquareGrid(3) // 2×2
	g.ReserveTile(3)
	c := hilight.GHZ(3)
	res, err := hilight.Compile(c, g)
	if err != nil {
		panic(err)
	}
	fmt.Print(hilight.RenderLayout(g, res.Schedule.Initial))
}
