package hilight_test

import (
	"math"
	"strings"
	"testing"

	"hilight"
	"hilight/internal/errmodel"
)

func TestCompileSurgeryThroughAPI(t *testing.T) {
	c := hilight.QFT(9)
	res, err := hilight.CompileSurgery(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(res.Circuit); err != nil {
		t.Fatalf("surgery schedule invalid: %v", err)
	}
	// Surgery needs the quarter-density board: strictly more tiles than
	// braiding's compact grid.
	if res.Schedule.Grid.Tiles() <= hilight.RectGrid(9).Tiles() {
		t.Error("surgery grid not larger than braiding grid")
	}
	braid, err := hilight.Compile(c, hilight.RectGrid(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < braid.Latency {
		t.Logf("note: surgery latency %d beat braiding %d (possible on tiny instances)", res.Latency, braid.Latency)
	}
}

func TestSurgeryGridShape(t *testing.T) {
	g := hilight.SurgeryGrid(9)
	cells := 0
	for tile := 0; tile < g.Tiles(); tile++ {
		x, y := g.TileXY(tile)
		if x%2 == 0 && y%2 == 0 {
			cells++
		}
	}
	if cells < 9 {
		t.Errorf("surgery grid %v has only %d qubit cells", g, cells)
	}
}

func TestMagicAnalysisThroughAPI(t *testing.T) {
	c, _ := hilight.Benchmark("4gt5_75")
	g := hilight.RectGrid(c.NumQubits)
	res, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hilight.AnalyzeMagic(res.Circuit, res.Schedule, hilight.DefaultMagicFactory())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TCount == 0 {
		t.Error("Toffoli-derived benchmark should consume T states")
	}
	if rep.TotalLatency < rep.BraidLatency {
		t.Error("stalls cannot reduce latency")
	}
	k, err := hilight.MagicFactoriesNeeded(res.Circuit, res.Schedule, hilight.DefaultMagicFactory(), 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Errorf("factories needed = %d", k)
	}
}

func TestEstimateResourcesThroughAPI(t *testing.T) {
	c := hilight.QFT(10)
	g := hilight.RectGrid(10)
	res, err := hilight.Compile(c, g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hilight.EstimateResources(res.Schedule, 1e-3, hilight.DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distance < 3 || rep.PhysicalQubits <= 0 || rep.WallClock <= 0 {
		t.Errorf("degenerate estimate: %+v", rep)
	}
	// Lower latency (better mapping) must never need a larger distance.
	worse, err := hilight.Compile(c, g, hilight.WithMethod("autobraid-full"))
	if err != nil {
		t.Fatal(err)
	}
	repWorse, err := hilight.EstimateResources(worse.Schedule, 1e-3, hilight.DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}
	if worse.Latency >= res.Latency && repWorse.Distance < rep.Distance {
		t.Errorf("higher-latency schedule got smaller distance: %d vs %d", repWorse.Distance, rep.Distance)
	}
}

// Regression: factory-reserved tiles must not count as compute tiles in
// the failure-volume that sizes the code distance — the factory runs its
// own distillation protocol with its own budget. Reserved tiles still
// cost physical qubits, reported separately in ReservedQubits.
func TestEstimateResourcesReservedFactoryTiles(t *testing.T) {
	g, err := hilight.GridWithFactory(10, 3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	reserved := g.ReservedTiles()
	if reserved != 6 {
		t.Fatalf("factory grid reserves %d tiles, want 6 (test premise)", reserved)
	}
	res, err := hilight.Compile(hilight.QFT(10), g)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hilight.EstimateResources(res.Schedule, 1e-3, hilight.DefaultErrorModel())
	if err != nil {
		t.Fatal(err)
	}

	// The distance (and therefore the failure probability) must match an
	// estimate over the compute tiles alone.
	compute := g.Tiles() - reserved
	base, err := errmodel.Estimate(compute, res.Latency, 1e-3, errmodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Distance != base.Distance {
		t.Errorf("reserved tiles changed the code distance: %d, want %d", rep.Distance, base.Distance)
	}
	if rep.LogicalError != base.LogicalError {
		t.Errorf("reserved tiles changed the failure probability: %g, want %g",
			rep.LogicalError, base.LogicalError)
	}

	// Reserved tiles still cost d²-scaled physical qubits.
	perTile := hilight.DefaultErrorModel().QubitsPerTileFactor * float64(rep.Distance*rep.Distance)
	if want := int(math.Ceil(perTile * float64(reserved))); rep.ReservedQubits != want {
		t.Errorf("ReservedQubits = %d, want %d", rep.ReservedQubits, want)
	}
	if want := int(math.Ceil(perTile * float64(g.Tiles()))); rep.PhysicalQubits != want {
		t.Errorf("PhysicalQubits = %d, want %d (compute + reserved)", rep.PhysicalQubits, want)
	}
	if rep.PhysicalQubits <= rep.ReservedQubits {
		t.Errorf("PhysicalQubits %d does not dominate ReservedQubits %d",
			rep.PhysicalQubits, rep.ReservedQubits)
	}
}

func TestRenderScheduleThroughAPI(t *testing.T) {
	c := hilight.GHZ(6)
	res, err := hilight.Compile(c, hilight.RectGrid(6))
	if err != nil {
		t.Fatal(err)
	}
	out := hilight.RenderSchedule(res.Schedule, 2)
	if !strings.Contains(out, "cycle 0") {
		t.Errorf("render missing cycles:\n%s", out)
	}
	layout := hilight.RenderLayout(res.Grid, res.Schedule.Initial)
	if !strings.Contains(layout, "0") {
		t.Error("layout render missing qubits")
	}
}

func TestObserverThroughAPI(t *testing.T) {
	c := hilight.QFT(8)
	cycles := 0
	res, err := hilight.Compile(c, hilight.RectGrid(8),
		hilight.WithObserver(func(s hilight.CycleStats) { cycles++ }))
	if err != nil {
		t.Fatal(err)
	}
	if cycles != res.Latency {
		t.Errorf("observer saw %d cycles, latency %d", cycles, res.Latency)
	}
}
