package hilight

import "hilight/internal/obs"

// Metrics is a process-wide, concurrency-safe metrics registry: named
// counters, gauges and fixed-bucket latency histograms with
// allocation-free atomic increments. One registry is typically shared by
// every Compile and CompileAll in the process (pass it with WithMetrics)
// and scraped with Snapshot or WriteMetrics.
//
// Metric families, by emit point:
//
//   - pipeline/<pass>/... — per compiler pass: runs, errors, a seconds
//     histogram, and every Result.Trace counter of that pass (signed
//     deltas such as qco/cx-delta accumulate as gauges). For a single
//     compile the deltas reconcile exactly with Result.Trace.
//   - route/... — routing-layer totals: braids-routed, cycles,
//     searches and search-pops (A* open-heap pops / DFS stack pops).
//   - compile/... — fallback-activations and fallback-recovered from
//     the WithFallback degradation chain.
//   - batch/... — CompileAll job accounting: jobs, jobs-succeeded,
//     jobs-failed, jobs-panicked, jobs-canceled, jobs-degraded counters,
//     queue-wait-seconds and job-seconds histograms, and an inflight
//     gauge. jobs = succeeded + failed + panicked + canceled.
type Metrics = obs.Registry

// MetricsSnapshot is a stable, name-sorted point-in-time view of a
// Metrics registry (see Metrics and Snapshot).
type MetricsSnapshot = obs.Snapshot

// MetricSample is one named counter or gauge value of a MetricsSnapshot.
type MetricSample = obs.Sample

// MetricHistogram is one histogram of a MetricsSnapshot.
type MetricHistogram = obs.HistogramSample

// NewMetrics returns an empty metrics registry. Its Snapshot method
// returns a MetricsSnapshot; WriteMetrics renders the Prometheus text
// exposition format.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithMetrics aggregates the compile (or every job of a CompileAll
// batch) into m: pipeline pass counters and latency histograms, routing
// totals, fallback activations, and batch job accounting. The registry
// is safe to share across concurrent compiles and to scrape while
// compiles run. Metering costs two atomic operations per counter update
// and never allocates on the increment path, so hot paths (and the
// routing layer's zero-allocation guarantee) are unaffected.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// CompileEvent is one structured observation of a CompileAll batch: a
// job starting, finishing, panicking, or degrading to a fallback method.
type CompileEvent = obs.Event

// EventKind enumerates CompileEvent kinds.
type EventKind = obs.EventKind

// CompileEvent kinds. Every batch job emits exactly one terminal event —
// EventJobFinish (Err nil or not) or EventJobPanic — and EventJobStart
// only when a worker picked the job up: a job failed by the dispatcher
// after cancellation reports EventJobFinish with zero Duration and no
// preceding EventJobStart. EventJobDegraded is emitted in addition to
// EventJobFinish when a WithFallback method produced the job's result.
const (
	EventJobStart    = obs.JobStart
	EventJobFinish   = obs.JobFinish
	EventJobPanic    = obs.JobPanic
	EventJobDegraded = obs.JobDegraded
)

// WithEvents streams per-job lifecycle events from CompileAll: start
// (with queue wait), finish (with wall time and error), panic, and
// degraded-to-fallback. fn may be invoked concurrently from multiple
// worker goroutines and must be safe for concurrent use; it should
// return quickly — a slow observer stalls its worker. Compile ignores
// the option: events describe batch jobs.
func WithEvents(fn func(CompileEvent)) Option {
	return func(o *options) { o.events = obs.EventObserverFunc(fn) }
}

// WithJobDone registers fn to receive every CompileAll job's terminal
// outcome the moment it lands: fn(job, result) is called exactly once
// per job, with the job's index in the batch slice and its BatchResult
// (exactly one of Result/Err set, the CompileAll invariant). Unlike
// WithEvents — which describes lifecycle timing but not payloads — the
// callback hands over the actual result, which is what streaming
// consumers and the hilightd job journal need to persist partial batch
// progress before the whole batch returns.
//
// fn may be invoked concurrently from multiple worker goroutines and
// must be safe for concurrent use; jobs the dispatcher failed after a
// cancellation are reported too (with their ErrCanceled error), from
// the dispatching goroutine. CompileAll does not return until every
// callback has. Compile ignores the option: outcomes describe batch
// jobs.
func WithJobDone(fn func(job int, r BatchResult)) Option {
	return func(o *options) { o.jobDone = fn }
}
