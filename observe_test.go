package hilight_test

import (
	"strings"
	"sync"
	"testing"

	"hilight"
)

// For a single compile on a fresh registry, the pipeline/... deltas must
// reconcile exactly with Result.Trace: one run per executed pass, one
// seconds observation per pass, and every trace counter mirrored under
// its pass prefix. The route/... totals mirror the route stage counters.
func TestMetricsReconcileWithTrace(t *testing.T) {
	m := hilight.NewMetrics()
	res, err := hilight.Compile(hilight.QFT(10), hilight.RectGrid(10), hilight.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	for _, st := range res.Trace {
		prefix := "pipeline/" + st.Stage + "/"
		if runs, ok := snap.Counter(prefix + "runs"); !ok || runs != 1 {
			t.Errorf("%sruns = %d (ok=%v), want 1", prefix, runs, ok)
		}
		if hs, ok := snap.Histogram(prefix + "seconds"); !ok || hs.Count != 1 {
			t.Errorf("%sseconds count = %d (ok=%v), want 1", prefix, hs.Count, ok)
		}
		if errs, ok := snap.Counter(prefix + "errors"); !ok || errs != 0 {
			t.Errorf("%serrors = %d (ok=%v), want 0", prefix, errs, ok)
		}
		for _, c := range st.Counters {
			got, ok := snap.Counter(prefix + c.Name)
			if !ok {
				// Signed deltas land in gauges instead.
				got, ok = snap.Gauge(prefix + c.Name)
			}
			if !ok || got != c.Value {
				t.Errorf("%s%s = %d (ok=%v), want trace value %d", prefix, c.Name, got, ok, c.Value)
			}
		}
	}

	// The route stage's counters are also rolled up as route/... totals,
	// and the cycle count is the schedule latency.
	var routeTrace *hilight.StageTrace
	for i := range res.Trace {
		if res.Trace[i].Stage == "route" {
			routeTrace = &res.Trace[i]
		}
	}
	if routeTrace == nil {
		t.Fatal("trace has no route stage")
	}
	for trace, total := range map[string]string{
		"cycles":      "route/cycles",
		"braids":      "route/braids-routed",
		"searches":    "route/searches",
		"search-pops": "route/search-pops",
	} {
		want, ok := routeTrace.Counter(trace)
		if !ok {
			t.Fatalf("route trace has no %q counter", trace)
		}
		if got, ok := snap.Counter(total); !ok || got != want {
			t.Errorf("%s = %d (ok=%v), want trace %s = %d", total, got, ok, trace, want)
		}
	}
	if cycles, _ := snap.Counter("route/cycles"); cycles != int64(res.Latency) {
		t.Errorf("route/cycles = %d, want Result.Latency %d", cycles, res.Latency)
	}
}

// One registry shared by a parallel batch and scraped concurrently: the
// totals must come out exact (no lost updates) and scraping must never
// observe a torn state — exercised under -race by `make race`.
func TestMetricsConcurrentCompileAllAndSnapshot(t *testing.T) {
	m := hilight.NewMetrics()
	jobs := make([]hilight.BatchJob, 24)
	for i := range jobs {
		jobs[i] = hilight.BatchJob{Circuit: hilight.GHZ(6)}
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := m.Snapshot()
				if v, ok := snap.Gauge("batch/inflight"); ok && v < 0 {
					t.Errorf("negative inflight gauge %d observed mid-batch", v)
					return
				}
				var sb strings.Builder
				if err := snap.WriteMetrics(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	results := hilight.CompileAll(jobs, 8, hilight.WithMetrics(m))
	close(stop)
	scrapers.Wait()

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	snap := m.Snapshot()
	if runs, ok := snap.Counter("pipeline/route/runs"); !ok || runs != int64(len(jobs)) {
		t.Errorf("pipeline/route/runs = %d (ok=%v), want %d", runs, ok, len(jobs))
	}
	if n, ok := snap.Counter("batch/jobs-succeeded"); !ok || n != int64(len(jobs)) {
		t.Errorf("batch/jobs-succeeded = %d (ok=%v), want %d", n, ok, len(jobs))
	}
	if v, ok := snap.Gauge("batch/inflight"); !ok || v != 0 {
		t.Errorf("batch/inflight = %d (ok=%v), want 0", v, ok)
	}
}
