// Benchmarks for the extension subsystems: the lattice-surgery
// comparator, the post-passes (compaction, refinement), the physical
// lowering, the magic-state analysis, and batch compilation throughput.
package hilight_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hilight"
	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/grid"
	"hilight/internal/lattice"
	"hilight/internal/place"
	"hilight/internal/surgery"
)

// BenchmarkModeComparison maps the same circuit in braiding and
// lattice-surgery modes (the §2.3 contrast).
func BenchmarkModeComparison(b *testing.B) {
	c := bench.QFT(25)
	b.Run("braiding", func(b *testing.B) {
		g := grid.Rect(25)
		var latency int
		for i := 0; i < b.N; i++ {
			res, err := core.Run(c, g, core.MustMethod("hilight-map"), core.RunOptions{Rng: rand.New(rand.NewSource(1))})
			if err != nil {
				b.Fatal(err)
			}
			latency = res.Latency
		}
		b.ReportMetric(float64(latency), "latency")
	})
	b.Run("surgery", func(b *testing.B) {
		g := surgery.DilutedGrid(25)
		var latency int
		for i := 0; i < b.N; i++ {
			l, err := surgery.DilutedPlace(c, g)
			if err != nil {
				b.Fatal(err)
			}
			res, err := surgery.Map(c, g, l)
			if err != nil {
				b.Fatal(err)
			}
			latency = res.Latency
		}
		b.ReportMetric(float64(latency), "latency")
	})
}

// BenchmarkCompaction measures the post-routing compaction pass and its
// latency recovery on a bubble-rich schedule (the two-bend L-shape
// finder defers under congestion; compaction re-routes with A*).
func BenchmarkCompaction(b *testing.B) {
	c := bench.QFT(36)
	g := grid.Rect(36)
	sp := core.MustMethod("hilight-map")
	sp.Finder = "l-shape"
	res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		b.Fatal(err)
	}
	var recovered int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compact := core.CompactSchedule(res.Schedule, res.Circuit, nil)
		recovered = res.Schedule.Latency() - compact.Latency()
	}
	b.ReportMetric(float64(recovered), "cycles-recovered")
}

// BenchmarkRefinement measures the local-search placement polish.
func BenchmarkRefinement(b *testing.B) {
	e, _ := bench.ByName("sqrt8_260")
	c := e.Build()
	g := grid.Rect(c.NumQubits)
	base := place.Random{Rng: rand.New(rand.NewSource(1))}.Place(c, g)
	before := place.Score(base, c, g)
	var after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refined := place.Refine(base, c, g, 0)
		after = place.Score(refined, c, g)
	}
	b.ReportMetric(float64(before-after), "score-improvement")
}

// BenchmarkLowering measures the defect-level physical expansion at
// several code distances.
func BenchmarkLowering(b *testing.B) {
	c := bench.QFT(25)
	res, err := core.Run(c, grid.Rect(25), core.MustMethod("hilight-map"), core.RunOptions{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{3, 9, 15} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lattice.Lower(res.Schedule, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMagicAnalysis measures the factory-throughput overlay on a
// T-heavy benchmark.
func BenchmarkMagicAnalysis(b *testing.B) {
	e, _ := bench.ByName("sqrt8_260")
	c := e.Build()
	g := grid.Rect(c.NumQubits)
	res, err := hilight.Compile(c, g, hilight.WithMethod("hilight-map"))
	if err != nil {
		b.Fatal(err)
	}
	unit := hilight.DefaultMagicFactory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hilight.AnalyzeMagic(res.Circuit, res.Schedule, unit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchCompile measures worker-pool throughput scaling.
func BenchmarkBatchCompile(b *testing.B) {
	var jobs []hilight.BatchJob
	for n := 6; n <= 20; n += 2 {
		jobs = append(jobs, hilight.BatchJob{Circuit: bench.QFT(n)})
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range hilight.CompileAll(jobs, workers, hilight.WithSeed(2)) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
