package hilight_test

// Binary wire-format goldens: testdata/golden_wire/*.bin pins the exact
// bytes EncodeScheduleBinary (and EncodeDefectsBinary) produce for a
// Table 1 subset at seed 1. Unlike the schedule-hash goldens, these catch
// codec regressions even when the *schedule* is unchanged: a varint
// tweak, a reordered field, or a version bump all surface as a byte
// diff. Decoders must keep accepting every checked-in fixture forever —
// that is the v1 compatibility promise the CI wire-compat job enforces.
//
// Regenerate with `go test -run TestGoldenWire -update` — only when the
// wire format itself intentionally changes (which requires a version
// bump, not a silent rewrite of v1).

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hilight"
)

const goldenWireDir = "testdata/golden_wire"

// goldenWireBenchmarks is the Table 1 subset the fixtures cover — the
// same deterministic rows the schedule-hash goldens pin.
var goldenWireBenchmarks = []string{"QFT-10", "QFT-16", "BV-10", "CC-11", "Ising-10"}

// goldenWireSchedule compiles one fixture circuit at seed 1.
func goldenWireSchedule(t testing.TB, name string) *hilight.Schedule {
	t.Helper()
	c, ok := hilight.Benchmark(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	res, err := hilight.Compile(c, hilight.RectGrid(c.NumQubits), hilight.WithSeed(1))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res.Schedule
}

// goldenWireDefects samples the fixture defect map (rate 8%, seed 7 on a
// 6×6 grid — the same draw TestEncodersByteStable audits).
func goldenWireDefects(t testing.TB) *hilight.DefectMap {
	t.Helper()
	_, d := hilight.InjectDefects(hilight.NewGrid(6, 6), 0.08, 7)
	if d.Empty() {
		t.Fatal("fault injection produced no defects")
	}
	return d
}

// TestGoldenWire pins the binary encoding byte-for-byte against the
// checked-in fixtures, and audits the codec contract on each: encoding
// is byte-stable, decode∘encode is the identity on the wire bytes, and
// the binary payload stays within the 40%-of-JSON budget.
func TestGoldenWire(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(goldenWireDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	var binTotal, jsonTotal int
	for _, name := range goldenWireBenchmarks {
		t.Run(name, func(t *testing.T) {
			s := goldenWireSchedule(t, name)
			bin, err := hilight.EncodeScheduleBinary(s)
			if err != nil {
				t.Fatal(err)
			}
			js, err := hilight.EncodeScheduleJSON(s)
			if err != nil {
				t.Fatal(err)
			}
			binTotal += len(bin)
			jsonTotal += len(js)

			path := filepath.Join(goldenWireDir, name+".bin")
			if *updateGolden {
				if err := os.WriteFile(path, bin, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, JSON %d)", path, len(bin), len(js))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing wire golden (run with -update): %v", err)
			}
			if !bytes.Equal(bin, want) {
				t.Fatalf("binary encoding of %s drifted from %s (%d vs %d bytes)",
					name, path, len(bin), len(want))
			}

			// Round trip: the fixture decodes, and re-encoding the decoded
			// schedule reproduces the fixture bytes exactly.
			rt, err := hilight.DecodeScheduleBinary(want)
			if err != nil {
				t.Fatalf("golden fixture undecodable: %v", err)
			}
			again, err := hilight.EncodeScheduleBinary(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, want) {
				t.Error("decode∘encode is not the identity on the golden bytes")
			}
			// And the decoded schedule is semantically intact.
			rtJSON, err := hilight.EncodeScheduleJSON(rt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rtJSON, js) {
				t.Error("golden fixture decodes to a different schedule")
			}
		})
	}
	if !*updateGolden {
		// The size budget from the wire-format design: binary carries the
		// Table 1 subset in at most 40% of the JSON footprint.
		if binTotal*100 > jsonTotal*40 {
			t.Errorf("binary total %d B exceeds 40%% of JSON total %d B", binTotal, jsonTotal)
		}
	}

	// Defect maps get the same treatment on their own fixture.
	t.Run("defects", func(t *testing.T) {
		d := goldenWireDefects(t)
		bin, err := hilight.EncodeDefectsBinary(d)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(goldenWireDir, "defects-6x6.bin")
		if *updateGolden {
			if err := os.WriteFile(path, bin, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", path, len(bin))
			return
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing wire golden (run with -update): %v", err)
		}
		if !bytes.Equal(bin, want) {
			t.Fatalf("binary defect encoding drifted from %s", path)
		}
		rt, err := hilight.DecodeDefectsBinary(want)
		if err != nil {
			t.Fatalf("golden fixture undecodable: %v", err)
		}
		again, err := hilight.EncodeDefectsBinary(rt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, want) {
			t.Error("decode∘encode is not the identity on the defect fixture")
		}
	})
}

// TestGoldenWireBinaryStable extends the byte-stability audit to the
// binary codec: repeated encodings of one schedule are identical.
func TestGoldenWireBinaryStable(t *testing.T) {
	s := goldenWireSchedule(t, "BV-10")
	a, err := hilight.EncodeScheduleBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hilight.EncodeScheduleBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("EncodeScheduleBinary is not byte-stable")
	}
}
