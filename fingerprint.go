package hilight

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"hilight/internal/qasm"
)

// fingerprintVersion is bumped whenever the digest input layout changes,
// so digests from different layouts can never collide.
const fingerprintVersion = "hilight-fp-v1"

// Fingerprint returns a stable hex digest identifying the compile a
// Compile(c, g, opts...) call would perform: two calls with semantically
// equal inputs produce the same digest in any process, and changing any
// input that can change the output — the circuit, the grid's shape,
// reserved tiles or defects, a WithDefects map, the method, the seed,
// the QCO override, compaction, or the fallback chain — produces a
// different digest. Options that cannot change the produced schedule
// (WithContext, WithTimeout, WithObserver, WithMetrics, WithEvents) are
// excluded, so a cache keyed by the fingerprint may serve a result
// compiled under different instrumentation.
//
// The parallel-routing execution knobs are excluded too. WithRouteWorkers
// never changes the output at all: for a fixed method the parallel route
// pass emits byte-identical schedules at every pool size (pinned by the
// determinism suite), and on sequential methods the option is inert.
// WithLookahead selects only among equally-short braiding paths — it
// never changes which gates route or how many braids execute — so a
// fingerprint-keyed cache may serve a schedule compiled under any
// concurrency settings: the result is an equivalent, fully valid
// schedule for the same compile.
//
// The circuit is canonicalized through its OpenQASM rendering (gate list
// and width; the circuit's display name does not participate), and
// defect maps are canonicalized by sorting, so permuted but equal maps
// fingerprint identically. This is the content-address used by the
// hilightd schedule cache.
func Fingerprint(c *Circuit, g *Grid, opts ...Option) (string, error) {
	if c == nil {
		return "", ErrNilCircuit
	}
	if g == nil {
		return "", ErrNilGrid
	}
	o := options{method: "hilight", seed: 1}
	for _, opt := range opts {
		opt(&o)
	}

	h := sha256.New()
	fmt.Fprintf(h, "%s\n", fingerprintVersion)
	fmt.Fprintf(h, "method=%s\n", o.method)
	fmt.Fprintf(h, "seed=%d\n", o.seed)
	switch {
	case o.qco == nil:
		io.WriteString(h, "qco=unset\n")
	case *o.qco:
		io.WriteString(h, "qco=true\n")
	default:
		io.WriteString(h, "qco=false\n")
	}
	fmt.Fprintf(h, "compact=%t\n", o.compact)
	fmt.Fprintf(h, "fallback=%d", len(o.fallback))
	for _, m := range o.fallback {
		fmt.Fprintf(h, ",%s", m)
	}
	io.WriteString(h, "\n")

	// Grid identity: dimensions, factory reservation, and baked-in
	// defects. Reserved tiles are enumerated in tile order, defects
	// through the sorted DefectMap view, so the encoding is canonical.
	fmt.Fprintf(h, "grid=%dx%d\nreserved=", g.W, g.H)
	for t := 0; t < g.Tiles(); t++ {
		if g.Reserved(t) {
			fmt.Fprintf(h, "%d,", t)
		}
	}
	io.WriteString(h, "\ngrid-defects=")
	hashDefects(h, g.Defects())
	// A WithDefects map is applied on top of the grid's own defects at
	// compile time; hash it as a separate canonical section.
	io.WriteString(h, "\nopt-defects=")
	hashDefects(h, o.defects)
	io.WriteString(h, "\n")

	src := qasm.Format(c)
	fmt.Fprintf(h, "qasm:%d\n%s", len(src), src)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// hashDefects writes a canonical rendering of d: entries sorted, so
// permuted but semantically equal maps hash identically. A nil or empty
// map hashes as the fixed empty form.
func hashDefects(w io.Writer, d *DefectMap) {
	if d.Empty() {
		io.WriteString(w, "empty")
		return
	}
	tiles := append([]int(nil), d.Tiles...)
	verts := append([]int(nil), d.Vertices...)
	chans := append([][2]int(nil), d.Channels...)
	// EdgeID treats [u,v] and [v,u] as the same channel; normalize so
	// they fingerprint identically too.
	for i, ch := range chans {
		if ch[0] > ch[1] {
			chans[i] = [2]int{ch[1], ch[0]}
		}
	}
	sort.Ints(tiles)
	sort.Ints(verts)
	sort.Slice(chans, func(i, j int) bool {
		if chans[i][0] != chans[j][0] {
			return chans[i][0] < chans[j][0]
		}
		return chans[i][1] < chans[j][1]
	})
	fmt.Fprintf(w, "t%v v%v c%v", tiles, verts, chans)
}
