// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each BenchmarkTable1/BenchmarkFig* target measures
// the mapping work behind one reported artifact; run with
//
//	go test -bench=. -benchmem
//
// Per-metric custom results: latency (cycles) and resutil are reported
// via b.ReportMetric so the shape of the paper's numbers shows up next to
// the runtime.
package hilight_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hilight"
	"hilight/internal/autobraid"
	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/exp"
	"hilight/internal/grid"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
)

// table1Selection keeps the per-row benchmark affordable: the paper's
// deterministic small rows plus one representative of each family.
var table1Selection = []string{
	"4gt11_82", "4gt5_75", "rd32_270", "sqrt8_260", "squar5_261",
	"QFT-10", "QFT-16", "QFT-100",
	"BV-10", "BV-100",
	"CC-11", "CC-100",
	"Ising-10", "Ising-500",
	"BWT-126", "QAOA-100",
}

func table1Frameworks() map[string]func(*rand.Rand) core.Config {
	return map[string]func(*rand.Rand) core.Config{
		"autobraid-sp":   func(*rand.Rand) core.Config { return autobraid.SP() },
		"autobraid-full": autobraid.Full,
		"hilight-map":    core.HilightMap,
	}
}

// BenchmarkTable1 regenerates Table 1 rows: every selected benchmark
// mapped by the three frameworks on the M×(M−1) grid.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Selection {
		e, ok := bench.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %s", name)
		}
		c := e.Build()
		g := grid.Rect(e.N)
		for fw, mk := range table1Frameworks() {
			b.Run(fmt.Sprintf("%s/%s", name, fw), func(b *testing.B) {
				var lastLatency int
				var lastUtil float64
				for i := 0; i < b.N; i++ {
					res, err := core.Map(c, g, mk(rand.New(rand.NewSource(1))))
					if err != nil {
						b.Fatal(err)
					}
					lastLatency = res.Latency
					lastUtil = res.ResUtil
				}
				b.ReportMetric(float64(lastLatency), "latency")
				b.ReportMetric(lastUtil, "resutil")
			})
		}
	}
}

// BenchmarkFig8aPlacement regenerates Fig. 8a: the five initial-placement
// methods with routing held fixed.
func BenchmarkFig8aPlacement(b *testing.B) {
	methods := map[string]func(*rand.Rand) place.Method{
		"identity": func(*rand.Rand) place.Method { return place.Identity{} },
		"random":   func(rng *rand.Rand) place.Method { return place.Random{Rng: rng} },
		"gm":       func(rng *rand.Rand) place.Method { return place.GM{Rng: rng} },
		"gmwp":     func(rng *rand.Rand) place.Method { return place.GMWP{Rng: rng} },
		"proposed": func(rng *rand.Rand) place.Method { return place.HiLight{Rng: rng} },
	}
	for _, name := range []string{"sqrt8_260", "QFT-100", "Ising-500"} {
		e, _ := bench.ByName(name)
		c := e.Build()
		g := grid.Rect(e.N)
		for m, mk := range methods {
			b.Run(fmt.Sprintf("%s/%s", name, m), func(b *testing.B) {
				var latency int
				for i := 0; i < b.N; i++ {
					cfg := core.Config{
						Placement: mk(rand.New(rand.NewSource(1))),
						Ordering:  order.Proposed{},
						Finder:    &route.AStar{},
					}
					res, err := core.Map(c, g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					latency = res.Latency
				}
				b.ReportMetric(float64(latency), "latency")
			})
		}
	}
}

// BenchmarkFig8bOrdering regenerates Fig. 8b: the five gate-ordering
// strategies under the proposed placement and path-finder.
func BenchmarkFig8bOrdering(b *testing.B) {
	strategies := map[string]func(*rand.Rand) order.Strategy{
		"random":     func(rng *rand.Rand) order.Strategy { return order.Random{Rng: rng} },
		"ascending":  func(*rand.Rand) order.Strategy { return order.Ascending{} },
		"descending": func(*rand.Rand) order.Strategy { return order.Descending{} },
		"llg":        func(*rand.Rand) order.Strategy { return order.LLG{} },
		"proposed":   func(*rand.Rand) order.Strategy { return order.Proposed{} },
	}
	for _, name := range []string{"QFT-100", "QAOA-100"} {
		e, _ := bench.ByName(name)
		c := e.Build()
		g := grid.Rect(e.N)
		for s, mk := range strategies {
			b.Run(fmt.Sprintf("%s/%s", name, s), func(b *testing.B) {
				var latency int
				for i := 0; i < b.N; i++ {
					rng := rand.New(rand.NewSource(1))
					cfg := core.Config{
						Placement: place.HiLight{Rng: rng},
						Ordering:  mk(rng),
						Finder:    &route.AStar{},
					}
					res, err := core.Map(c, g, cfg)
					if err != nil {
						b.Fatal(err)
					}
					latency = res.Latency
				}
				b.ReportMetric(float64(latency), "latency")
			})
		}
	}
}

// BenchmarkFig8cAblation regenerates Fig. 8c: the six mapping-step
// combinations on a representative benchmark.
func BenchmarkFig8cAblation(b *testing.B) {
	e, _ := bench.ByName("QFT-100")
	c := e.Build()
	g := grid.Rect(e.N)
	rows := map[string]func(*rand.Rand) core.Config{
		"identity+ours+ours": func(*rand.Rand) core.Config {
			return core.Config{Placement: place.Identity{}}
		},
		"gm+ours+ours": func(rng *rand.Rand) core.Config {
			return core.Config{Placement: place.GM{Rng: rng}}
		},
		"prox+ours+ours": func(*rand.Rand) core.Config {
			return core.Config{Placement: place.Proximity{}}
		},
		"full-proposed": core.HilightMap,
		"no-fast-braiding": func(rng *rand.Rand) core.Config {
			cfg := core.HilightMap(rng)
			cfg.Finder = &route.Full16{}
			return cfg
		},
		"llg-ordering": func(rng *rand.Rand) core.Config {
			cfg := core.HilightMap(rng)
			cfg.Ordering = order.LLG{}
			return cfg
		},
	}
	for name, mk := range rows {
		b.Run(name, func(b *testing.B) {
			var latency int
			for i := 0; i < b.N; i++ {
				res, err := core.Map(c, g, mk(rand.New(rand.NewSource(1))))
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency")
		})
	}
}

// BenchmarkFig9Scalability regenerates Fig. 9: the four methods across
// increasing QFT sizes (runtime scaling is the figure's y-axis).
func BenchmarkFig9Scalability(b *testing.B) {
	for _, n := range []int{10, 16, 50, 100} {
		c := bench.QFT(n)
		g := grid.Rect(n)
		for _, method := range exp.Fig9Methods {
			method := method
			b.Run(fmt.Sprintf("QFT-%d/%s", n, method), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := fig9Config(method)
					if _, err := core.Map(c, g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func fig9Config(method string) core.Config {
	rng := rand.New(rand.NewSource(1))
	switch method {
	case "baseline":
		return core.Fig9Baseline(rng)
	case "autobraid-full":
		return autobraid.Full(rng)
	case "hilight-gm":
		return core.HilightGM(rng)
	default:
		return core.HilightMap(rng)
	}
}

// BenchmarkFig10Levels regenerates Fig. 10: program- and hardware-level
// variants against hilight-map.
func BenchmarkFig10Levels(b *testing.B) {
	e, _ := bench.ByName("sqrt8_260")
	c := e.Build()
	arms := map[string]struct {
		rect bool
		mk   func(*rand.Rand) core.Config
	}{
		"autobraid-full": {false, autobraid.Full},
		"hilight-map":    {false, core.HilightMap},
		"hilight-pg":     {false, core.HilightPG},
		"hilight-hw":     {true, core.HilightMap},
		"hilight-full":   {true, core.HilightPG},
	}
	for name, arm := range arms {
		g := grid.Square(e.N)
		if arm.rect {
			g = grid.Rect(e.N)
		}
		b.Run(name, func(b *testing.B) {
			var latency int
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := core.Map(c, g, arm.mk(rand.New(rand.NewSource(1))))
				if err != nil {
					b.Fatal(err)
				}
				latency, util = res.Latency, res.ResUtil
			}
			b.ReportMetric(float64(latency), "latency")
			b.ReportMetric(util, "resutil")
		})
	}
}

// BenchmarkPathFinders isolates the three path-finders on one search
// (the ablation DESIGN.md calls out: single A* vs 16-pair vs stack DFS).
func BenchmarkPathFinders(b *testing.B) {
	g := grid.New(24, 24)
	finders := map[string]route.Finder{
		"astar-closest": &route.AStar{},
		"full-16":       &route.Full16{},
		"stack-dfs":     &route.StackDFS{},
	}
	for name, f := range finders {
		b.Run(name, func(b *testing.B) {
			occ := route.NewOccupancy(g)
			var buf route.Path
			for i := 0; i < b.N; i++ {
				p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf[:0])
				if !ok {
					b.Fatal("no path on empty grid")
				}
				buf = p
			}
		})
	}
}

// BenchmarkOrderingStrategies isolates gate-ordering cost on a large
// ready set — the recurrent-graph LLG cost the paper measures.
func BenchmarkOrderingStrategies(b *testing.B) {
	g := grid.New(20, 20)
	rng := rand.New(rand.NewSource(1))
	ready := make([]order.Ready, 200)
	for i := range ready {
		ready[i] = order.Ready{Gate: i, CtlTile: rng.Intn(g.Tiles()), TgtTile: rng.Intn(g.Tiles())}
	}
	strategies := map[string]order.Strategy{
		"proposed": order.Proposed{},
		"llg":      order.LLG{},
	}
	for name, s := range strategies {
		b.Run(name, func(b *testing.B) {
			buf := make([]order.Ready, len(ready))
			for i := 0; i < b.N; i++ {
				copy(buf, ready)
				s.Order(buf, g)
			}
		})
	}
}

// BenchmarkPlacementMethods isolates initial-placement cost (matrix
// proximity vs node/edge GM) on a mid-size circuit.
func BenchmarkPlacementMethods(b *testing.B) {
	c := bench.QFT(100)
	g := grid.Rect(100)
	methods := map[string]place.Method{
		"proximity": place.Proximity{},
		"gm":        place.GM{Rng: rand.New(rand.NewSource(1))},
		"pattern":   place.Pattern{Rng: rand.New(rand.NewSource(1))},
	}
	for name, m := range methods {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Place(c, g)
			}
		})
	}
}

// BenchmarkQCO isolates the program-level optimization rewrite.
func BenchmarkQCO(b *testing.B) {
	c := bench.QFT(100)
	b.Run("qft-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hilight.OptimizeProgram(c)
		}
	})
	e, _ := bench.ByName("sqrt8_260")
	r := e.Build()
	b.Run("sqrt8_260", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hilight.OptimizeProgram(r)
		}
	})
}
