// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each BenchmarkTable1/BenchmarkFig* target measures
// the mapping work behind one reported artifact; run with
//
//	go test -bench=. -benchmem
//
// Per-metric custom results: latency (cycles) and resutil are reported
// via b.ReportMetric so the shape of the paper's numbers shows up next to
// the runtime.
package hilight_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hilight"
	_ "hilight/internal/autobraid" // registers the autobraid-sp/-full method specs

	"hilight/internal/bench"
	"hilight/internal/core"
	"hilight/internal/exp"
	"hilight/internal/grid"
	"hilight/internal/order"
	"hilight/internal/place"
	"hilight/internal/route"
)

// table1Selection keeps the per-row benchmark affordable: the paper's
// deterministic small rows plus one representative of each family.
var table1Selection = []string{
	"4gt11_82", "4gt5_75", "rd32_270", "sqrt8_260", "squar5_261",
	"QFT-10", "QFT-16", "QFT-100",
	"BV-10", "BV-100",
	"CC-11", "CC-100",
	"Ising-10", "Ising-500",
	"BWT-126", "QAOA-100",
}

func table1Frameworks() []string {
	return []string{"autobraid-sp", "autobraid-full", "hilight-map"}
}

// BenchmarkTable1 regenerates Table 1 rows: every selected benchmark
// mapped by the three frameworks on the M×(M−1) grid.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Selection {
		e, ok := bench.ByName(name)
		if !ok {
			b.Fatalf("unknown benchmark %s", name)
		}
		c := e.Build()
		g := grid.Rect(e.N)
		for _, fw := range table1Frameworks() {
			sp := core.MustMethod(fw)
			b.Run(fmt.Sprintf("%s/%s", name, fw), func(b *testing.B) {
				var lastLatency int
				var lastUtil float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
					if err != nil {
						b.Fatal(err)
					}
					lastLatency = res.Latency
					lastUtil = res.ResUtil
				}
				b.ReportMetric(float64(lastLatency), "latency")
				b.ReportMetric(lastUtil, "resutil")
			})
		}
	}
}

// BenchmarkFig8aPlacement regenerates Fig. 8a: the five initial-placement
// methods with routing held fixed.
func BenchmarkFig8aPlacement(b *testing.B) {
	methods := map[string]core.Spec{
		"identity": {Placement: "identity"},
		"random":   {Placement: "random"},
		"gm":       {Placement: "gm"},
		"gmwp":     {Placement: "gmwp"},
		"proposed": {Placement: "hilight"},
	}
	for _, name := range []string{"sqrt8_260", "QFT-100", "Ising-500"} {
		e, _ := bench.ByName(name)
		c := e.Build()
		g := grid.Rect(e.N)
		for m, sp := range methods {
			b.Run(fmt.Sprintf("%s/%s", name, m), func(b *testing.B) {
				var latency int
				for i := 0; i < b.N; i++ {
					res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
					if err != nil {
						b.Fatal(err)
					}
					latency = res.Latency
				}
				b.ReportMetric(float64(latency), "latency")
			})
		}
	}
}

// BenchmarkFig8bOrdering regenerates Fig. 8b: the five gate-ordering
// strategies under the proposed placement and path-finder.
func BenchmarkFig8bOrdering(b *testing.B) {
	strategies := map[string]core.Spec{
		"random":     {Ordering: "random"},
		"ascending":  {Ordering: "ascending"},
		"descending": {Ordering: "descending"},
		"llg":        {Ordering: "llg"},
		"proposed":   {Ordering: "proposed"},
	}
	for _, name := range []string{"QFT-100", "QAOA-100"} {
		e, _ := bench.ByName(name)
		c := e.Build()
		g := grid.Rect(e.N)
		for s, sp := range strategies {
			b.Run(fmt.Sprintf("%s/%s", name, s), func(b *testing.B) {
				var latency int
				for i := 0; i < b.N; i++ {
					res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
					if err != nil {
						b.Fatal(err)
					}
					latency = res.Latency
				}
				b.ReportMetric(float64(latency), "latency")
			})
		}
	}
}

// BenchmarkFig8cAblation regenerates Fig. 8c: the six mapping-step
// combinations on a representative benchmark.
func BenchmarkFig8cAblation(b *testing.B) {
	e, _ := bench.ByName("QFT-100")
	c := e.Build()
	g := grid.Rect(e.N)
	rows := map[string]core.Spec{
		"identity+ours+ours": {Placement: "identity"},
		"gm+ours+ours":       {Placement: "gm"},
		"prox+ours+ours":     {Placement: "proximity"},
		"full-proposed":      core.MustMethod("hilight-map"),
		"no-fast-braiding":   {Finder: "full-16"},
		"llg-ordering":       {Ordering: "llg"},
	}
	for name, sp := range rows {
		b.Run(name, func(b *testing.B) {
			var latency int
			for i := 0; i < b.N; i++ {
				res, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
				if err != nil {
					b.Fatal(err)
				}
				latency = res.Latency
			}
			b.ReportMetric(float64(latency), "latency")
		})
	}
}

// BenchmarkFig9Scalability regenerates Fig. 9: the four methods across
// increasing QFT sizes (runtime scaling is the figure's y-axis).
func BenchmarkFig9Scalability(b *testing.B) {
	for _, n := range []int{10, 16, 50, 100} {
		c := bench.QFT(n)
		g := grid.Rect(n)
		for _, method := range exp.Fig9Methods {
			method := method
			b.Run(fmt.Sprintf("QFT-%d/%s", n, method), func(b *testing.B) {
				sp := core.MustMethod(method)
				for i := 0; i < b.N; i++ {
					if _, err := core.Run(c, g, sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10Levels regenerates Fig. 10: program- and hardware-level
// variants against hilight-map.
func BenchmarkFig10Levels(b *testing.B) {
	e, _ := bench.ByName("sqrt8_260")
	c := e.Build()
	arms := map[string]struct {
		rect bool
		sp   core.Spec
	}{
		"autobraid-full": {false, core.MustMethod("autobraid-full")},
		"hilight-map":    {false, core.MustMethod("hilight-map")},
		"hilight-pg":     {false, core.MustMethod("hilight-pg")},
		"hilight-hw":     {true, core.MustMethod("hilight-map")},
		"hilight-full":   {true, core.MustMethod("hilight-pg")},
	}
	for name, arm := range arms {
		g := grid.Square(e.N)
		if arm.rect {
			g = grid.Rect(e.N)
		}
		b.Run(name, func(b *testing.B) {
			var latency int
			var util float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(c, g, arm.sp, core.RunOptions{Rng: rand.New(rand.NewSource(1))})
				if err != nil {
					b.Fatal(err)
				}
				latency, util = res.Latency, res.ResUtil
			}
			b.ReportMetric(float64(latency), "latency")
			b.ReportMetric(util, "resutil")
		})
	}
}

// BenchmarkPathFinders isolates the three path-finders on one search
// (the ablation DESIGN.md calls out: single A* vs 16-pair vs stack DFS).
func BenchmarkPathFinders(b *testing.B) {
	g := grid.New(24, 24)
	finders := map[string]route.Finder{
		"astar-closest": &route.AStar{},
		"full-16":       &route.Full16{},
		"stack-dfs":     &route.StackDFS{},
	}
	for name, f := range finders {
		b.Run(name, func(b *testing.B) {
			occ := route.NewOccupancy(g)
			var buf route.Path
			for i := 0; i < b.N; i++ {
				p, ok := f.Find(g, occ, 0, g.Tiles()-1, buf[:0])
				if !ok {
					b.Fatal("no path on empty grid")
				}
				buf = p
			}
		})
	}
}

// BenchmarkOrderingStrategies isolates gate-ordering cost on a large
// ready set — the recurrent-graph LLG cost the paper measures.
func BenchmarkOrderingStrategies(b *testing.B) {
	g := grid.New(20, 20)
	rng := rand.New(rand.NewSource(1))
	ready := make([]order.Ready, 200)
	for i := range ready {
		ready[i] = order.Ready{Gate: i, CtlTile: rng.Intn(g.Tiles()), TgtTile: rng.Intn(g.Tiles())}
	}
	strategies := map[string]order.Strategy{
		"proposed": order.Proposed{},
		"llg":      order.LLG{},
	}
	for name, s := range strategies {
		b.Run(name, func(b *testing.B) {
			buf := make([]order.Ready, len(ready))
			for i := 0; i < b.N; i++ {
				copy(buf, ready)
				s.Order(buf, g)
			}
		})
	}
}

// BenchmarkPlacementMethods isolates initial-placement cost (matrix
// proximity vs node/edge GM) on a mid-size circuit.
func BenchmarkPlacementMethods(b *testing.B) {
	c := bench.QFT(100)
	g := grid.Rect(100)
	methods := map[string]place.Method{
		"proximity": place.Proximity{},
		"gm":        place.GM{Rng: rand.New(rand.NewSource(1))},
		"pattern":   place.Pattern{Rng: rand.New(rand.NewSource(1))},
	}
	for name, m := range methods {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Place(c, g)
			}
		})
	}
}

// BenchmarkQCO isolates the program-level optimization rewrite.
func BenchmarkQCO(b *testing.B) {
	c := bench.QFT(100)
	b.Run("qft-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hilight.OptimizeProgram(c)
		}
	})
	e, _ := bench.ByName("sqrt8_260")
	r := e.Build()
	b.Run("sqrt8_260", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hilight.OptimizeProgram(r)
		}
	})
}
