package hilight_test

import (
	"bytes"
	"testing"

	"hilight"
)

func fp(t *testing.T, c *hilight.Circuit, g *hilight.Grid, opts ...hilight.Option) string {
	t.Helper()
	d, err := hilight.Fingerprint(c, g, opts...)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return d
}

func TestFingerprintStable(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(8)
	a := fp(t, c, g)
	// Recompute from independently rebuilt inputs: the digest is a pure
	// function of content, not of pointer identity or call order.
	b := fp(t, hilight.QFT(8), hilight.RectGrid(8))
	if a != b {
		t.Fatalf("fingerprint not stable across rebuilt inputs: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("want 64 hex chars, got %d (%s)", len(a), a)
	}
	// Defaults are spelled out, so an explicit default equals no option.
	if d := fp(t, c, g, hilight.WithMethod("hilight"), hilight.WithSeed(1)); d != a {
		t.Errorf("explicit defaults changed fingerprint")
	}
	// Instrumentation options never participate.
	if d := fp(t, c, g, hilight.WithMetrics(hilight.NewMetrics()), hilight.WithObserver(func(hilight.CycleStats) {})); d != a {
		t.Errorf("instrumentation options changed fingerprint")
	}
}

// TestFingerprintExcludesParallelKnobs pins the cache-key contract for
// the parallel route pass: worker count and lookahead depth are
// execution knobs, so compiles differing only in them share a
// fingerprint — on parallel and sequential methods alike.
func TestFingerprintExcludesParallelKnobs(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(8)
	for _, method := range []string{"hilight", "hilight-parallel"} {
		base := fp(t, c, g, hilight.WithMethod(method))
		for name, d := range map[string]string{
			"workers-8":    fp(t, c, g, hilight.WithMethod(method), hilight.WithRouteWorkers(8)),
			"workers-1":    fp(t, c, g, hilight.WithMethod(method), hilight.WithRouteWorkers(1)),
			"workers-auto": fp(t, c, g, hilight.WithMethod(method), hilight.WithRouteWorkers(0)),
			"lookahead-0":  fp(t, c, g, hilight.WithMethod(method), hilight.WithLookahead(0)),
			"lookahead-9":  fp(t, c, g, hilight.WithMethod(method), hilight.WithLookahead(9)),
			"both":         fp(t, c, g, hilight.WithMethod(method), hilight.WithRouteWorkers(4), hilight.WithLookahead(2)),
		} {
			if d != base {
				t.Errorf("%s: option set %q changed the fingerprint", method, name)
			}
		}
	}
	// The method itself still participates: sequential vs parallel presets
	// are distinct cache keys.
	if fp(t, c, g, hilight.WithMethod("hilight")) == fp(t, c, g, hilight.WithMethod("hilight-parallel")) {
		t.Error("hilight and hilight-parallel methods collide")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(8)
	base := fp(t, c, g)
	variants := map[string]string{
		"circuit":  fp(t, hilight.QFT(9), hilight.RectGrid(8)),
		"grid":     fp(t, c, hilight.NewGrid(4, 3)),
		"method":   fp(t, c, g, hilight.WithMethod("autobraid-sp")),
		"seed":     fp(t, c, g, hilight.WithSeed(2)),
		"qco-on":   fp(t, c, g, hilight.WithQCO(true)),
		"qco-off":  fp(t, c, g, hilight.WithQCO(false)),
		"compact":  fp(t, c, g, hilight.WithCompaction()),
		"fallback": fp(t, c, g, hilight.WithFallback("autobraid-sp")),
		"defects":  fp(t, c, g, hilight.WithDefects(&hilight.DefectMap{Tiles: []int{0}})),
	}
	seen := map[string]string{base: "base"}
	for name, d := range variants {
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %q collides with %q: %s", name, prev, d)
		}
		seen[d] = name
	}
	// QCO on vs off vs unset are three distinct states.
	if variants["qco-on"] == variants["qco-off"] {
		t.Error("qco=true and qco=false collide")
	}
}

func TestFingerprintGridState(t *testing.T) {
	c := hilight.QFT(8)
	plain := hilight.SquareGrid(9)
	base := fp(t, c, plain)

	// A factory reservation changes the digest.
	withFactory, err := hilight.GridWithFactory(8, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if withFactory.W == plain.W && withFactory.H == plain.H {
		if d := fp(t, c, withFactory); d == base {
			t.Error("factory reservation did not change fingerprint")
		}
	}

	// Defects baked into the grid change the digest the same as the
	// equivalent WithDefects option leaves the pristine-grid digest alone.
	degraded := plain.Clone()
	if err := degraded.ApplyDefects(&hilight.DefectMap{Tiles: []int{3}}); err != nil {
		t.Fatal(err)
	}
	if d := fp(t, c, degraded); d == base {
		t.Error("grid defects did not change fingerprint")
	}
}

func TestFingerprintDefectCanonicalization(t *testing.T) {
	c := hilight.QFT(8)
	g := hilight.RectGrid(8)
	a := fp(t, c, g, hilight.WithDefects(&hilight.DefectMap{
		Tiles:    []int{5, 1},
		Vertices: []int{7, 2},
		Channels: [][2]int{{1, 0}},
	}))
	b := fp(t, c, g, hilight.WithDefects(&hilight.DefectMap{
		Tiles:    []int{1, 5},
		Vertices: []int{2, 7},
		Channels: [][2]int{{0, 1}},
	}))
	if a != b {
		t.Errorf("permuted defect maps fingerprint differently: %s vs %s", a, b)
	}
}

func TestFingerprintNilInputs(t *testing.T) {
	if _, err := hilight.Fingerprint(nil, hilight.RectGrid(4)); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := hilight.Fingerprint(hilight.QFT(4), nil); err == nil {
		t.Error("nil grid accepted")
	}
}

// TestEncodersByteStable audits the JSON encoders the fingerprint and the
// golden fixtures depend on: encoding the same schedule or defect map
// repeatedly must produce identical bytes (no map-ordering
// nondeterminism).
func TestEncodersByteStable(t *testing.T) {
	_, d := hilight.InjectDefects(hilight.NewGrid(6, 6), 0.08, 7)
	if d.Empty() {
		t.Fatal("fault injection produced no defects; raise the rate")
	}
	ed1, err := hilight.EncodeDefects(d)
	if err != nil {
		t.Fatal(err)
	}
	ed2, err := hilight.EncodeDefects(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ed1, ed2) {
		t.Error("EncodeDefects is not byte-stable")
	}

	g := hilight.NewGrid(6, 6)
	res, err := hilight.Compile(hilight.QFT(8), g, hilight.WithDefects(d))
	if err != nil {
		t.Fatal(err)
	}
	es1, err := hilight.EncodeScheduleJSON(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	es2, err := hilight.EncodeScheduleJSON(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(es1, es2) {
		t.Error("EncodeScheduleJSON is not byte-stable")
	}
	// The embedded defect map must come out sorted regardless of how the
	// grid accumulated its defects (Grid.Defects sorts).
	rt, err := hilight.DecodeScheduleJSON(es1)
	if err != nil {
		t.Fatal(err)
	}
	es3, err := hilight.EncodeScheduleJSON(rt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(es1, es3) {
		t.Error("schedule JSON does not round-trip byte-stably")
	}
}
