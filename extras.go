package hilight

import (
	"hilight/internal/errmodel"
	"hilight/internal/lattice"
	"hilight/internal/magic"
	"hilight/internal/qco"
	"hilight/internal/revlib"
	"hilight/internal/sched"
	"hilight/internal/surgery"
	"hilight/internal/viz"
	"hilight/internal/wire"
)

// Lowering is the physical-lattice realization of a schedule at a code
// distance (see LowerSchedule).
type Lowering = lattice.Lowering

// LowerSchedule expands a braiding schedule down to the physical
// surface-code lattice at code distance d: every braid becomes a
// stabilizer-tear corridor, and the lowering fails loudly if two
// same-cycle corridors would ever touch — the physical soundness check
// of the 2D conflict model.
func LowerSchedule(s *Schedule, d int) (*Lowering, error) { return lattice.Lower(s, d) }

// ParseReal parses a RevLib ".real" reversible-circuit file — the native
// format of the paper's building-block benchmarks — expanding Toffoli and
// Fredkin gates into their CX networks.
func ParseReal(name, src string) (*Circuit, error) { return revlib.Parse(name, src) }

// CompressProgram applies the §3.3 QCO compression and cancellation
// rules (inverse-pair cancellation, rotation merging, phase promotion)
// and returns a semantically identical, never-larger circuit. Combine
// with OptimizeProgram for the full program-level pass.
func CompressProgram(c *Circuit) *Circuit { return qco.Compress(c) }

// EncodeScheduleJSON serializes a schedule (with its grid and initial
// layout) to a stable, versioned JSON form.
func EncodeScheduleJSON(s *Schedule) ([]byte, error) { return sched.EncodeJSON(s) }

// DecodeScheduleJSON reconstructs a schedule from EncodeScheduleJSON
// output. Validate it against its circuit before trusting it.
func DecodeScheduleJSON(data []byte) (*Schedule, error) { return sched.DecodeJSON(data) }

// EncodeScheduleBinary serializes a schedule in the versioned binary
// wire format — typically 10-20× smaller than the JSON form (varint
// integers, delta-encoded braiding paths, bitset defect masks). The
// encoding is byte-stable; both forms decode to byte-identically
// re-encodable schedules, so either may be cached or content-addressed.
func EncodeScheduleBinary(s *Schedule) ([]byte, error) { return wire.Binary.Encode(s) }

// DecodeScheduleBinary reconstructs a schedule from EncodeScheduleBinary
// output, rejecting truncated, corrupt, or future-versioned payloads.
// Validate it against its circuit before trusting it.
func DecodeScheduleBinary(data []byte) (*Schedule, error) { return wire.Binary.Decode(data) }

// EncodeDefectsBinary serializes a defect map in the binary wire format.
// Unlike EncodeDefects it is compact rather than readable; both
// round-trip the map exactly.
func EncodeDefectsBinary(d *DefectMap) ([]byte, error) { return wire.Binary.EncodeDefects(d) }

// DecodeDefectsBinary parses EncodeDefectsBinary output; the map is
// validated against the target grid when applied.
func DecodeDefectsBinary(data []byte) (*DefectMap, error) { return wire.Binary.DecodeDefects(data) }

// RenderLayout draws the grid and qubit layout as an ASCII diagram
// (reserved factory tiles render as ###).
func RenderLayout(g *Grid, l *Layout) string { return viz.Layout(g, l) }

// RenderSchedule draws up to maxLayers braiding cycles of a schedule,
// replaying layout changes from inserted SWAPs; maxLayers ≤ 0 draws all.
func RenderSchedule(s *Schedule, maxLayers int) string { return viz.Schedule(s, maxLayers) }

// RenderHeat draws a channel-usage heat map of the whole schedule:
// hotter glyphs mark routing channels more braids crossed.
func RenderHeat(s *Schedule) string { return viz.Heat(s) }

// RenderSVG renders up to maxLayers braiding cycles as a standalone SVG
// document (one frame per cycle, braids as colored polylines, factory
// tiles marked); maxLayers ≤ 0 renders every cycle.
func RenderSVG(s *Schedule, maxLayers int) string { return viz.SVG(s, maxLayers) }

// ScheduleDiff summarizes how two schedules for the same circuit differ
// (latency, path length, rescheduled and re-routed gates) — the
// regression view for heuristic work.
type ScheduleDiff = sched.Diff

// CompareSchedules computes a ScheduleDiff between two schedules.
func CompareSchedules(a, b *Schedule) ScheduleDiff { return sched.Compare(a, b) }

// MagicFactory describes a magic-state distillation pipeline for
// AnalyzeMagic (see internal/magic for the model).
type MagicFactory = magic.Factory

// MagicReport is the result of a factory-throughput analysis.
type MagicReport = magic.Report

// DefaultMagicFactory returns a single 15-to-1-style distillation unit.
func DefaultMagicFactory() MagicFactory { return magic.DefaultFactory() }

// AnalyzeMagic overlays a magic-state factory model on a compiled
// schedule: it reports the T-gate demand and the stall-adjusted latency
// when distillation cannot keep up — the paper's future-work direction,
// made quantitative.
func AnalyzeMagic(c *Circuit, s *Schedule, f MagicFactory) (MagicReport, error) {
	return magic.Analyze(c, s, f)
}

// MagicFactoriesNeeded sizes the distillation pipeline: the smallest unit
// count keeping stall cycles within maxStall.
func MagicFactoriesNeeded(c *Circuit, s *Schedule, unit MagicFactory, maxStall, maxUnits int) (int, error) {
	return magic.FactoriesNeeded(c, s, unit, maxStall, maxUnits)
}

// SurgeryResult is the outcome of mapping a circuit in lattice-surgery
// mode (see CompileSurgery).
type SurgeryResult = surgery.Result

// SurgeryGrid returns the quarter-density patch grid lattice surgery
// needs for n qubits: qubits on even-row/even-column tiles, the rest an
// ancilla routing sea.
func SurgeryGrid(n int) *Grid { return surgery.DilutedGrid(n) }

// CompileSurgery maps the circuit in the lattice-surgery surface-code
// mode — the alternative the paper's §2.3 contrasts with double-defect
// braiding — on a quarter-density patch layout. Compare its Latency and
// grid size against Compile's to quantify the braiding mode's hardware
// advantage versus surgery's lane-contention latency.
func CompileSurgery(c *Circuit) (*SurgeryResult, error) {
	g := surgery.DilutedGrid(c.NumQubits)
	l, err := surgery.DilutedPlace(c, g)
	if err != nil {
		return nil, err
	}
	return surgery.Map(c, g, l)
}

// ErrorModelParams configures the physical resource estimator.
type ErrorModelParams = errmodel.Params

// ResourceReport is a physical resource estimate for a schedule.
type ResourceReport = errmodel.Report

// DefaultErrorModel returns superconducting-platform parameters
// (p = 10⁻³, threshold 10⁻², 1 µs code cycles).
func DefaultErrorModel() ErrorModelParams { return errmodel.Default() }

// EstimateResources sizes the surface-code distance so the whole
// schedule completes within the given logical-error budget, and reports
// the implied physical qubit count and wall-clock time. Factory-reserved
// tiles carry no schedule volume — they don't drive the distance up —
// but their physical qubits are included in PhysicalQubits and broken
// out in ReservedQubits.
func EstimateResources(s *Schedule, budget float64, p ErrorModelParams) (ResourceReport, error) {
	reserved := s.Grid.ReservedTiles()
	return errmodel.EstimateReserved(s.Grid.Tiles()-reserved, reserved, s.Latency(), budget, p)
}
